#include "src/controller/merge.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "src/common/hash.h"

namespace ow {

void ApplyMerge(MergeKind kind, KvSlot& slot, bool created,
                const FlowRecord& rec) {
  if (created) {
    slot.attrs = rec.attrs;
    slot.num_attrs = rec.num_attrs;
    slot.last_subwindow = rec.subwindow;
    if (kind == MergeKind::kExistence) {
      slot.attrs[0] = 1;
      slot.num_attrs = std::max<std::uint8_t>(slot.num_attrs, 1);
    }
    return;
  }
  slot.last_subwindow = std::max(slot.last_subwindow, rec.subwindow);
  switch (kind) {
    case MergeKind::kFrequency:
      for (std::size_t i = 0; i < rec.num_attrs; ++i) {
        slot.attrs[i] += rec.attrs[i];
      }
      break;
    case MergeKind::kExistence:
      slot.attrs[0] = 1;
      break;
    case MergeKind::kMax:
      for (std::size_t i = 0; i < rec.num_attrs; ++i) {
        slot.attrs[i] = std::max(slot.attrs[i], rec.attrs[i]);
      }
      break;
    case MergeKind::kMin:
      for (std::size_t i = 0; i < rec.num_attrs; ++i) {
        slot.attrs[i] = std::min(slot.attrs[i], rec.attrs[i]);
      }
      break;
    case MergeKind::kDistinction: {
      Signature256 merged = {slot.attrs[0], slot.attrs[1], slot.attrs[2],
                             slot.attrs[3]};
      MergeSpreadSignature(merged, {rec.attrs[0], rec.attrs[1], rec.attrs[2],
                                    rec.attrs[3]});
      slot.attrs = merged;
      slot.num_attrs = 4;
      break;
    }
    case MergeKind::kXorSum:
      slot.attrs[0] += rec.attrs[0];
      for (std::size_t i = 1; i < 4; ++i) slot.attrs[i] ^= rec.attrs[i];
      slot.num_attrs = 4;
      break;
  }
}

// ------------------------------------------------------------- batch kernels

#if defined(__GNUC__) && !defined(__clang__)
#define OW_NO_VECTORIZE __attribute__((optimize("no-tree-vectorize")))
#else
#define OW_NO_VECTORIZE
#endif

#if defined(__x86_64__) && defined(__GNUC__)
#define OW_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#endif

namespace {

#ifdef OW_HAVE_AVX2_KERNELS

/// Runtime feature gate, resolved once per process.
bool HasAvx2() noexcept {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

__attribute__((target("avx2"))) void SumAvx2(std::uint64_t* a,
                                             const std::uint64_t* v,
                                             std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_add_epi64(va, vv));
  }
  for (; i < n; ++i) a[i] += v[i];
}

__attribute__((target("avx2"))) void MaxAvx2(std::uint64_t* a,
                                             const std::uint64_t* v,
                                             std::size_t n) {
  // AVX2 has no unsigned 64-bit compare; bias both operands by 2^63 and use
  // the signed compare (monotone under the shift), then blend the winners.
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<long long>(0x8000000000000000ull));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i v_gt_a = _mm256_cmpgt_epi64(_mm256_xor_si256(vv, bias),
                                              _mm256_xor_si256(va, bias));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_blendv_epi8(va, vv, v_gt_a));
  }
  for (; i < n; ++i) {
    if (v[i] > a[i]) a[i] = v[i];
  }
}

#endif  // OW_HAVE_AVX2_KERNELS

/// Portable fallback, written for the auto-vectorizer (non-x86 hosts, and
/// x86 CPUs without AVX2).
void SumPortable(std::uint64_t* __restrict a, const std::uint64_t* __restrict v,
                 std::size_t n) {
#pragma GCC ivdep
  for (std::size_t i = 0; i < n; ++i) {
    a[i] += v[i];
  }
}

void MaxPortable(std::uint64_t* __restrict a, const std::uint64_t* __restrict v,
                 std::size_t n) {
#pragma GCC ivdep
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = a[i] > v[i] ? a[i] : v[i];
  }
}

}  // namespace

OW_NO_VECTORIZE
void BatchSumScalar(std::span<std::uint64_t> acc,
                    std::span<const std::uint64_t> vals) {
  if (acc.size() != vals.size()) {
    throw std::invalid_argument("BatchSumScalar: size mismatch");
  }
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] += vals[i];
  }
}

void BatchSumSimd(std::span<std::uint64_t> acc,
                  std::span<const std::uint64_t> vals) {
  if (acc.size() != vals.size()) {
    throw std::invalid_argument("BatchSumSimd: size mismatch");
  }
#ifdef OW_HAVE_AVX2_KERNELS
  if (HasAvx2()) {
    SumAvx2(acc.data(), vals.data(), acc.size());
    return;
  }
#endif
  SumPortable(acc.data(), vals.data(), acc.size());
}

OW_NO_VECTORIZE
void BatchMaxScalar(std::span<std::uint64_t> acc,
                    std::span<const std::uint64_t> vals) {
  if (acc.size() != vals.size()) {
    throw std::invalid_argument("BatchMaxScalar: size mismatch");
  }
  for (std::size_t i = 0; i < acc.size(); ++i) {
    if (vals[i] > acc[i]) acc[i] = vals[i];
  }
}

void BatchMaxSimd(std::span<std::uint64_t> acc,
                  std::span<const std::uint64_t> vals) {
  if (acc.size() != vals.size()) {
    throw std::invalid_argument("BatchMaxSimd: size mismatch");
  }
#ifdef OW_HAVE_AVX2_KERNELS
  if (HasAvx2()) {
    MaxAvx2(acc.data(), vals.data(), acc.size());
    return;
  }
#endif
  MaxPortable(acc.data(), vals.data(), acc.size());
}

bool BatchKernelsUseAvx2() noexcept {
#ifdef OW_HAVE_AVX2_KERNELS
  return HasAvx2();
#else
  return false;
#endif
}

}  // namespace ow
