// Controller flow key-value table.
//
// Stand-in for the DPDK rte_hash table the paper's controller uses to store
// merged AFRs (§4.2, §8). Open addressing with linear probing over a flat
// slot array, which gives the property the RDMA optimization needs: every
// (key, attribute) pair has a STABLE byte offset that can be handed to the
// switch as an RDMA WRITE / FETCH_ADD destination (§7). Deletion uses
// tombstones for the same reason — live slots never move.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/arena.h"
#include "src/common/flowkey.h"

namespace ow {

class SnapshotWriter;
class SnapshotReader;

/// Encoding of a KeyValueTable checkpoint. kAuto picks sparse (index, slot)
/// pairs when fewer than half the slots are in use and the verbatim dense
/// array otherwise; the forced modes exist for byte-cost measurement
/// (bench/exp14_lifetime's sparse-vs-dense headline) and round-trip tests.
/// Both encodings reload to the identical slot array.
enum class KvSnapshotMode : std::uint8_t { kAuto, kDense, kSparse };

struct KvSlot {
  FlowKey key;
  std::array<std::uint64_t, 4> attrs{};
  std::uint8_t num_attrs = 0;
  std::uint32_t last_subwindow = 0;  ///< most recent sub-window contributing
  /// Upper 32 bits of the probe hash, cached at insert. Probing compares
  /// this tag before the full FlowKey — a probe chain walk touches one word
  /// per mismatched slot instead of the whole key. The tag bits are disjoint
  /// from the index bits (low bits & mask), so they discriminate within a
  /// chain.
  std::uint32_t hash_tag = 0;
  enum class State : std::uint8_t { kEmpty, kLive, kTombstone };
  State state = State::kEmpty;
};

class KeyValueTable {
 public:
  /// Capacity is rounded up to a power of two. The table refuses inserts
  /// beyond a 7/8 load factor (throws) rather than rehashing, because
  /// rehashing would invalidate RDMA-registered offsets.
  explicit KeyValueTable(std::size_t capacity);

  /// Find the slot for `key`, or nullptr.
  KvSlot* Find(const FlowKey& key);
  const KvSlot* Find(const FlowKey& key) const;

  /// Find or create the slot for `key`. `created` reports which happened.
  KvSlot& FindOrInsert(const FlowKey& key, bool& created);

  /// Like FindOrInsert, but a rejected insert (the 7/8 load limit) returns
  /// nullptr and bumps rejected_inserts() instead of throwing — the form
  /// the controller's merge path uses, where dropping one AFR is preferable
  /// to aborting a collection round. Lookups of existing keys always
  /// succeed, even at the load limit.
  KvSlot* TryFindOrInsert(const FlowKey& key, bool& created);

  /// Tombstone the slot for `key`. Returns true if it was live.
  bool Erase(const FlowKey& key);

  /// Drop all entries (tombstones included).
  void Clear();

  std::size_t size() const noexcept { return live_; }
  std::size_t capacity() const noexcept { return slots_.size(); }
  /// Occupancy gating inserts: live + tombstone slots over capacity (the
  /// table refuses fresh inserts past 7/8).
  double load_factor() const noexcept {
    return slots_.empty() ? 0.0 : double(used_) / double(slots_.size());
  }
  /// Inserts refused at the load limit since construction (monotonic;
  /// Clear() does not reset it).
  std::uint64_t rejected_inserts() const noexcept { return rejected_; }

  /// Stable slot index for RDMA address publication; only valid while the
  /// slot is live.
  std::size_t SlotIndex(const KvSlot& slot) const;

  /// Byte offset of `attrs[attr]` of slot `slot_index` within the table's
  /// backing array — the address the controller installs into the switch's
  /// address MAT.
  std::size_t AttrOffsetBytes(std::size_t slot_index, std::size_t attr) const;

  /// Raw backing array access for RDMA MR mirroring.
  KvSlot* data() noexcept { return slots_.data(); }
  std::size_t backing_bytes() const noexcept {
    return slots_.size() * sizeof(KvSlot);
  }

  /// Visit every live slot.
  void ForEach(const std::function<void(KvSlot&)>& fn);
  void ForEach(const std::function<void(const KvSlot&)>& fn) const;

  /// Checkpoint the slot array (slots are trivially copyable, and the probe
  /// layout must survive verbatim so RDMA-stable offsets and probe chains
  /// are preserved). Sparse tables emit only their occupied (live +
  /// tombstone) slots as (index, slot) pairs — checkpoint cost scales with
  /// state, not provisioned capacity. Load validates the claimed capacity
  /// and every untrusted count BEFORE touching this table, reconstructs the
  /// full array, verifies the rebuilt live/used tallies against the
  /// stream's, and leaves the table UNCHANGED if it throws.
  void Save(SnapshotWriter& w,
            KvSnapshotMode mode = KvSnapshotMode::kAuto) const;
  void Load(SnapshotReader& r);

  /// Occupied-slot count below which kAuto saves sparse. With ~64-byte
  /// slots an (index, slot) pair costs ~1.12 slots, so sparse stays
  /// smaller well past half occupancy; half keeps a comfortable margin.
  static std::size_t SparseSaveThreshold(std::size_t capacity) {
    return capacity / 2;
  }

 private:
  static std::uint64_t HashOf(const FlowKey& key);
  std::size_t Probe(const FlowKey& key) const;

  // Pool-backed: window-type resets (tumbling Clear + reconstruction) and
  // QueryRange scratch tables recycle slot arrays instead of reallocating.
  PooledVector<KvSlot> slots_;
  std::size_t mask_;
  std::size_t live_ = 0;
  std::size_t used_ = 0;  // live + tombstones
  std::uint64_t rejected_ = 0;
};

}  // namespace ow
