#include "src/controller/merge_engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <stdexcept>

#ifdef __linux__
#include <ctime>
#endif

namespace ow {
namespace {

/// Per-thread CPU time, so a worker's measurement excludes time spent
/// descheduled (e.g. when the host has fewer cores than workers). On a
/// machine with a free core per worker this equals wall time.
Nanos ThreadCpuNow() {
#ifdef __linux__
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return Nanos(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  }
#endif
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// ApplyMerge, with the frequency fold routed through the Exp#7 vectorized
/// batch-sum kernel (the attribute words of slot and record are contiguous
/// uint64 arrays — exactly the kernel's shape). Integer addition is exact
/// and order-free, so this is bit-identical to the scalar ApplyMerge path.
void MergeRecord(MergeKind kind, KvSlot& slot, bool created,
                 const FlowRecord& rec) {
  if (kind == MergeKind::kFrequency && !created) {
    slot.last_subwindow = std::max(slot.last_subwindow, rec.subwindow);
    BatchSumSimd({slot.attrs.data(), rec.num_attrs},
                 {rec.attrs.data(), rec.num_attrs});
    return;
  }
  ApplyMerge(kind, slot, created, rec);
}

}  // namespace

MergeEngine::MergeEngine(std::size_t threads)
    : shards_(std::bit_ceil(std::max<std::size_t>(1, threads))),
      tasks_(shards_),
      obs_batches_(&obs::Global().GetCounter("merge.batches")),
      obs_records_(&obs::Global().GetCounter("merge.records")),
      obs_partition_ns_(&obs::Global().GetHistogram("merge.partition_ns")),
      obs_insert_ns_(&obs::Global().GetHistogram("merge.insert_ns")),
      obs_merge_ns_(&obs::Global().GetHistogram("merge.merge_ns")) {
  workers_.reserve(shards_ - 1);
  for (std::size_t i = 1; i < shards_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

MergeEngine::~MergeEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void MergeEngine::RunShard(MergeKind kind, ShardTask& task,
                           KeyValueTable& shard) {
  // One trace span per shard per batch, so the critical-path claim is
  // inspectable in the Chrome trace (workers show up on their own tid
  // lanes). The span object exists only on the traced branch: a live RAII
  // frame across RunShardHot's loops pessimizes their codegen measurably.
  if (obs::Global().tracing()) {
    obs::ScopedSpan span(obs::Global(), "merge.shard");
    RunShardHot(kind, task, shard);
    return;
  }
  RunShardHot(kind, task, shard);
}

void MergeEngine::RunShardHot(MergeKind kind, ShardTask& task,
                              KeyValueTable& shard) {
  // O2: slot lookups/inserts. Rejected inserts (shard load limit) leave a
  // null slot and are skipped by the merge; the shard counts them.
  task.slots.clear();
  task.slots.reserve(task.records.size());
  const Nanos t0 = ThreadCpuNow();
  for (const FlowRecord* rec : task.records) {
    bool created = false;
    KvSlot* slot = shard.TryFindOrInsert(rec->key, created);
    task.slots.emplace_back(slot, created);
  }
  const Nanos t1 = ThreadCpuNow();
  // O3: fold attribute values.
  for (std::size_t i = 0; i < task.records.size(); ++i) {
    if (KvSlot* slot = task.slots[i].first) {
      MergeRecord(kind, *slot, task.slots[i].second, *task.records[i]);
    }
  }
  const Nanos t2 = ThreadCpuNow();
  task.insert_ns = t1 - t0;
  task.merge_ns = t2 - t1;
}

void MergeEngine::WorkerLoop(std::size_t shard_index) {
  std::uint64_t seen = 0;
  while (true) {
    MergeKind kind;
    ShardedKeyValueTable* table;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      kind = kind_;
      table = table_;
    }
    RunShard(kind, tasks_[shard_index], table->shard(shard_index));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

MergeEngine::BatchTiming MergeEngine::MergeBatch(
    MergeKind kind, std::span<const FlowRecord> records,
    ShardedKeyValueTable& table) {
  if (table.shard_count() != shards_) {
    throw std::invalid_argument(
        "MergeEngine::MergeBatch: table shard count != engine threads");
  }
  // Same split as RunShard: the batch span wraps the traced branch only so
  // the serial partition loop never runs under a live span frame.
  if (obs::Global().tracing()) {
    obs::ScopedSpan span(obs::Global(), "merge.batch");
    return MergeBatchHot(kind, records, table);
  }
  return MergeBatchHot(kind, records, table);
}

MergeEngine::BatchTiming MergeEngine::MergeBatchHot(
    MergeKind kind, std::span<const FlowRecord> records,
    ShardedKeyValueTable& table) {
  BatchTiming timing;

  // Serial partition by shard. Stable: each shard sees its records in the
  // batch's original order, so per-key merge order is independent of the
  // shard count.
  const Nanos p0 = ThreadCpuNow();
  for (auto& task : tasks_) task.records.clear();
  for (const FlowRecord& rec : records) {
    tasks_[table.ShardOf(rec.key)].records.push_back(&rec);
  }
  timing.partition = ThreadCpuNow() - p0;

  if (shards_ == 1) {
    RunShard(kind, tasks_[0], table.shard(0));
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      kind_ = kind;
      table_ = &table;
      outstanding_ = shards_ - 1;
      ++generation_;
    }
    work_cv_.notify_all();
    RunShard(kind, tasks_[0], table.shard(0));
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    // The mutex acquire above pairs with each worker's release when it
    // decremented outstanding_: every shard write happens-before this
    // return.
  }

  for (const auto& task : tasks_) {
    timing.insert = std::max(timing.insert, task.insert_ns);
    timing.merge = std::max(timing.merge, task.merge_ns);
  }
  obs_batches_->Add();
  obs_records_->Add(records.size());
  obs_partition_ns_->Record(std::uint64_t(timing.partition));
  obs_insert_ns_->Record(std::uint64_t(timing.insert));
  obs_merge_ns_->Record(std::uint64_t(timing.merge));
  return timing;
}

}  // namespace ow
