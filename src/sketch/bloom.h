// Bloom filter.
//
// Used by OmniWindow's flowkey tracking (Algorithm 1) to deduplicate
// flowkeys before spilling them to the controller, and reusable as a
// membership structure by telemetry queries (distinct operators).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/flowkey.h"
#include "src/common/hash.h"

namespace ow {

class SnapshotWriter;
class SnapshotReader;

class BloomFilter {
 public:
  /// `bits` cells, `k` hash functions. `bits` is rounded up to a multiple
  /// of 64.
  BloomFilter(std::size_t bits, std::size_t k,
              std::uint64_t seed = 0xB100F11Edull);

  void Insert(const FlowKey& key);
  bool Contains(const FlowKey& key) const;

  /// Insert and report whether the key was (probably) already present.
  /// Single pass over the k cells — mirrors the one-pass test-and-set the
  /// data plane performs.
  bool TestAndSet(const FlowKey& key);

  void Reset();

  std::size_t bit_count() const noexcept { return bits_; }
  std::size_t MemoryBytes() const noexcept { return words_.size() * 8; }
  std::size_t NumSalus() const noexcept { return hashes_.size(); }

  /// Expected false-positive rate after `n` insertions.
  double ExpectedFpp(std::size_t n) const;

  /// Checkpoint the bit words (geometry/hash seeds are configuration).
  /// Load verifies the word count matches and throws SnapshotError
  /// otherwise.
  void Save(SnapshotWriter& w) const;
  void Load(SnapshotReader& r);

 private:
  std::size_t BitIndex(std::size_t i, const FlowKey& key) const;

  std::size_t bits_;
  HashFamily hashes_;
  std::vector<std::uint64_t> words_;
};

}  // namespace ow
