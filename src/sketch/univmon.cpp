#include "src/sketch/univmon.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_set>

namespace ow {

UnivMon::UnivMon(std::size_t levels, std::size_t depth, std::size_t width,
                 std::size_t heap_k, std::uint64_t seed)
    : depth_(depth), heap_k_(heap_k), sample_seed_(Mix64(seed ^ 0x5A11)) {
  if (levels == 0 || depth == 0 || width == 0 || heap_k == 0) {
    throw std::invalid_argument("UnivMon: bad geometry");
  }
  for (std::size_t l = 0; l < levels; ++l) {
    sketches_.emplace_back(depth, width, seed + l * 0x9E37ull);
  }
  heaps_.resize(levels);
}

UnivMon UnivMon::WithMemory(std::size_t memory_bytes, std::size_t depth,
                            std::uint64_t seed) {
  constexpr std::size_t kLevels = 8;
  const std::size_t width = std::max<std::size_t>(
      1, memory_bytes / (kLevels * depth * 8));
  return UnivMon(kLevels, depth, width, 64, seed);
}

std::size_t UnivMon::LevelOf(const FlowKey& key) const {
  const std::uint64_t h = key.Hash(sample_seed_);
  return std::min<std::size_t>(std::countl_zero(h | 1ull),
                               sketches_.size() - 1);
}

void UnivMon::Update(const FlowKey& key, std::uint64_t inc) {
  const std::size_t top = LevelOf(key);
  // The flow is sampled into levels 0..top.
  for (std::size_t l = 0; l <= top; ++l) {
    sketches_[l].Update(key, inc);
    auto& heap = heaps_[l];
    auto it = heap.find(key);
    if (it != heap.end()) {
      it->second += inc;
      continue;
    }
    const std::uint64_t est = sketches_[l].Estimate(key);
    if (heap.size() < heap_k_) {
      heap.emplace(key, est);
      continue;
    }
    // Replace the smallest tracked flow if this one is now larger.
    auto min_it = heap.begin();
    for (auto h = heap.begin(); h != heap.end(); ++h) {
      if (h->second < min_it->second) min_it = h;
    }
    if (est > min_it->second) {
      heap.erase(min_it);
      heap.emplace(key, est);
    }
  }
}

std::uint64_t UnivMon::Estimate(const FlowKey& key) const {
  return sketches_[0].Estimate(key);
}

void UnivMon::Reset() {
  for (auto& s : sketches_) s.Reset();
  for (auto& h : heaps_) h.clear();
}

PooledVector<FlowKey> UnivMon::Candidates() const {
  PooledUnorderedSet<FlowKey, FlowKeyHasher> seen;
  for (const auto& heap : heaps_) {
    for (const auto& [key, count] : heap) seen.insert(key);
  }
  return {seen.begin(), seen.end()};
}

double UnivMon::EstimateGsum(
    const std::function<double(double)>& g) const {
  const std::size_t L = sketches_.size();
  // Top level: plain sum over its heavy hitters.
  double y = 0;
  for (const auto& [key, count] : heaps_[L - 1]) {
    y += g(double(sketches_[L - 1].Estimate(key)));
  }
  // Recurse downward: Y_l = 2 Y_{l+1} + sum over level-l heavies of
  // g(f) * (1 - 2 * [sampled into level l+1]).
  for (std::size_t l = L - 1; l-- > 0;) {
    double yl = 2.0 * y;
    for (const auto& [key, count] : heaps_[l]) {
      const double gf = g(double(sketches_[l].Estimate(key)));
      const bool sampled_up = LevelOf(key) >= l + 1;
      yl += gf * (1.0 - 2.0 * (sampled_up ? 1.0 : 0.0));
    }
    y = std::max(0.0, yl);
  }
  return y;
}

double UnivMon::EstimateCardinality() const {
  return EstimateGsum([](double x) { return x > 0 ? 1.0 : 0.0; });
}

double UnivMon::EstimateSecondMoment() const {
  return EstimateGsum([](double x) { return x * x; });
}

std::size_t UnivMon::MemoryBytes() const {
  std::size_t total = 0;
  for (const auto& s : sketches_) total += s.MemoryBytes();
  total += heaps_.size() * heap_k_ * 24;  // key + tracked count
  return total;
}

}  // namespace ow
