#include "src/sketch/signature.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/common/hash.h"

namespace ow {
namespace {

double LinearCount(double m, double set) {
  const double z = m - set;
  if (z <= 0.5) return m * std::log(2 * m);  // saturated
  if (set == 0) return 0;
  return m * std::log(m / z);
}

}  // namespace

void LcSignatureInsert(SpreadSignature& sig, std::uint64_t element_hash) {
  const std::size_t bit = std::size_t(Mix64(element_hash) % 256);
  sig[bit / 64] |= 1ull << (bit % 64);
}

double LcSignatureEstimate(const SpreadSignature& sig) {
  std::size_t set = 0;
  for (std::uint64_t w : sig) set += std::popcount(w);
  return LinearCount(256.0, double(set));
}

void MrbSignatureInsert(SpreadSignature& sig, std::uint64_t element_hash) {
  const std::size_t level =
      std::min<std::size_t>(std::countl_zero(element_hash | 1ull), 3);
  const std::size_t bit = std::size_t(Mix64(element_hash) % 64);
  sig[level] |= 1ull << bit;
}

double MrbSignatureEstimate(const SpreadSignature& sig) {
  constexpr double m = 64.0;
  const std::size_t sat = std::size_t(m * 0.93);
  auto set_bits = [&](std::size_t l) {
    return std::size_t(std::popcount(sig[l]));
  };
  std::size_t base = 0;
  while (base + 1 < 4 && set_bits(base) > sat) ++base;
  double total = 0;
  for (std::size_t l = base; l < 4; ++l) {
    const std::size_t set = set_bits(l);
    if (set == 0) continue;
    total += LinearCount(m, double(set));
  }
  return total * std::pow(2.0, double(base));
}

}  // namespace ow
