#include "src/sketch/count_sketch.h"

#include <algorithm>
#include <stdexcept>

namespace ow {

CountSketch::CountSketch(std::size_t depth, std::size_t width,
                         std::uint64_t seed)
    : width_(width), hashes_(depth, seed), signs_(depth, Mix64(seed)) {
  if (depth == 0 || width == 0) {
    throw std::invalid_argument("CountSketch: depth and width must be > 0");
  }
  rows_.assign(depth, std::vector<std::int64_t>(width, 0));
}

CountSketch CountSketch::WithMemory(std::size_t memory_bytes,
                                    std::size_t depth, std::uint64_t seed) {
  const std::size_t width = std::max<std::size_t>(1, memory_bytes / (depth * 8));
  return CountSketch(depth, width, seed);
}

std::int64_t CountSketch::Sign(std::size_t row, const FlowKey& key) const {
  return (signs_(row, key.bytes()) & 1) ? 1 : -1;
}

void CountSketch::Update(const FlowKey& key, std::uint64_t inc) {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    rows_[i][hashes_.Index(i, key.bytes(), width_)] +=
        Sign(i, key) * std::int64_t(inc);
  }
}

std::uint64_t CountSketch::Estimate(const FlowKey& key) const {
  std::vector<std::int64_t> ests;
  ests.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    ests.push_back(Sign(i, key) *
                   rows_[i][hashes_.Index(i, key.bytes(), width_)]);
  }
  std::nth_element(ests.begin(), ests.begin() + ests.size() / 2, ests.end());
  const std::int64_t median = ests[ests.size() / 2];
  return median > 0 ? std::uint64_t(median) : 0;
}

void CountSketch::Reset() {
  for (auto& row : rows_) std::fill(row.begin(), row.end(), 0);
}

}  // namespace ow
