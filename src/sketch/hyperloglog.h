// HyperLogLog (Flajolet et al., 2007; Heule et al., EDBT 2013 refinements).
//
// Cardinality estimation with m single-byte registers tracking the maximum
// leading-zero run per bucket. Includes the small-range linear-counting
// correction from the HLL++ paper, which dominates accuracy at the window
// cardinalities the evaluation uses.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sketch/sketch.h"

namespace ow {

class HyperLogLog final : public CardinalityEstimator {
 public:
  /// `precision` p gives m = 2^p one-byte registers (4 <= p <= 18).
  explicit HyperLogLog(unsigned precision);

  static HyperLogLog WithMemory(std::size_t memory_bytes);

  void Add(std::uint64_t element_hash) override;
  double Estimate() const override;
  void Reset() override;

  std::size_t MemoryBytes() const override { return regs_.size(); }
  std::size_t NumSalus() const override { return 1; }

  /// Register-wise max merge — HLL's native mergeability (used by the
  /// distinction-statistics merge strategy).
  void MergeFrom(const HyperLogLog& other);

  unsigned precision() const noexcept { return p_; }

 private:
  unsigned p_;
  std::vector<std::uint8_t> regs_;
};

}  // namespace ow
