#include "src/sketch/count_min.h"

#include <algorithm>
#include <stdexcept>

namespace ow {

CountMinSketch::CountMinSketch(std::size_t depth, std::size_t width,
                               std::uint64_t seed)
    : width_(width), hashes_(depth, seed) {
  if (depth == 0 || width == 0) {
    throw std::invalid_argument("CountMinSketch: depth and width must be > 0");
  }
  rows_.assign(depth, std::vector<std::uint64_t>(width, 0));
}

CountMinSketch CountMinSketch::WithMemory(std::size_t memory_bytes,
                                          std::size_t depth,
                                          std::uint64_t seed) {
  const std::size_t width = std::max<std::size_t>(1, memory_bytes / (depth * 8));
  return CountMinSketch(depth, width, seed);
}

void CountMinSketch::Update(const FlowKey& key, std::uint64_t inc) {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    rows_[i][hashes_.Index(i, key.bytes(), width_)] += inc;
  }
}

std::uint64_t CountMinSketch::Estimate(const FlowKey& key) const {
  std::uint64_t best = UINT64_MAX;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    best = std::min(best, rows_[i][hashes_.Index(i, key.bytes(), width_)]);
  }
  return best == UINT64_MAX ? 0 : best;
}

void CountMinSketch::Reset() {
  for (auto& row : rows_) std::fill(row.begin(), row.end(), 0);
}

void CountMinSketch::MergeFrom(const CountMinSketch& other) {
  if (other.depth() != depth() || other.width() != width()) {
    throw std::invalid_argument("CountMinSketch::MergeFrom: geometry mismatch");
  }
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    for (std::size_t j = 0; j < width_; ++j) {
      rows_[i][j] += other.rows_[i][j];
    }
  }
}

}  // namespace ow
