#include "src/sketch/bloom.h"

#include <cmath>
#include <stdexcept>

#include "src/common/snapshot.h"

namespace ow {

BloomFilter::BloomFilter(std::size_t bits, std::size_t k, std::uint64_t seed)
    : bits_((bits + 63) / 64 * 64), hashes_(k, seed) {
  if (bits == 0 || k == 0) {
    throw std::invalid_argument("BloomFilter: bits and k must be > 0");
  }
  words_.resize(bits_ / 64, 0);
}

std::size_t BloomFilter::BitIndex(std::size_t i, const FlowKey& key) const {
  return hashes_.Index(i, key.bytes(), bits_);
}

void BloomFilter::Insert(const FlowKey& key) {
  for (std::size_t i = 0; i < hashes_.size(); ++i) {
    const std::size_t b = BitIndex(i, key);
    words_[b / 64] |= (1ull << (b % 64));
  }
}

bool BloomFilter::Contains(const FlowKey& key) const {
  for (std::size_t i = 0; i < hashes_.size(); ++i) {
    const std::size_t b = BitIndex(i, key);
    if (!(words_[b / 64] & (1ull << (b % 64)))) return false;
  }
  return true;
}

bool BloomFilter::TestAndSet(const FlowKey& key) {
  bool present = true;
  for (std::size_t i = 0; i < hashes_.size(); ++i) {
    const std::size_t b = BitIndex(i, key);
    const std::uint64_t mask = 1ull << (b % 64);
    if (!(words_[b / 64] & mask)) present = false;
    words_[b / 64] |= mask;
  }
  return present;
}

void BloomFilter::Reset() {
  std::fill(words_.begin(), words_.end(), 0);
}

void BloomFilter::Save(SnapshotWriter& w) const {
  w.Section(snap::kBloom);
  w.PodVec(words_);
}

void BloomFilter::Load(SnapshotReader& r) {
  r.Section(snap::kBloom);
  const std::size_t words = words_.size();
  r.PodVec(words_);
  if (words_.size() != words) {
    throw SnapshotError("BloomFilter: snapshot has " +
                        std::to_string(words_.size() * 64) +
                        " bits, filter has " + std::to_string(bits_));
  }
}

double BloomFilter::ExpectedFpp(std::size_t n) const {
  const double k = double(hashes_.size());
  const double m = double(bits_);
  return std::pow(1.0 - std::exp(-k * double(n) / m), k);
}

}  // namespace ow
