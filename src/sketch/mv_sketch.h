// MV-Sketch (Tang, Huang & Lee, INFOCOM 2019 / ToN 2020).
//
// Invertible heavy-flow sketch. Each bucket tracks a total count V, a
// majority-vote candidate key K and an indicator count C; the candidate is
// replaced when its indicator is voted down to zero. Heavy hitters can be
// enumerated directly from the candidate keys, which is how the data plane
// tracks heavy keys without a separate key store.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/hash.h"
#include "src/sketch/sketch.h"

namespace ow {

class MvSketch final : public InvertibleSketch {
 public:
  MvSketch(std::size_t depth, std::size_t width,
           std::uint64_t seed = 0x3141592653589793ull);

  /// Geometry from a memory budget. Bucket = V(8) + C(8) + K(16) = 32 bytes.
  static MvSketch WithMemory(std::size_t memory_bytes, std::size_t depth,
                             std::uint64_t seed = 0x3141592653589793ull);

  void Update(const FlowKey& key, std::uint64_t inc) override;
  std::uint64_t Estimate(const FlowKey& key) const override;
  void Reset() override;

  PooledVector<FlowKey> Candidates() const override;

  std::size_t MemoryBytes() const override {
    return rows_.size() * width_ * kBucketBytes;
  }
  // V, C and the key field are separate register arrays in hardware.
  std::size_t NumSalus() const override { return rows_.size() * 3; }

  std::size_t depth() const noexcept { return rows_.size(); }
  std::size_t width() const noexcept { return width_; }

  static constexpr std::size_t kBucketBytes = 32;

 private:
  struct Bucket {
    std::uint64_t total = 0;      // V
    std::int64_t indicator = 0;   // C
    FlowKey candidate;            // K
  };

  std::size_t width_;
  HashFamily hashes_;
  std::vector<std::vector<Bucket>> rows_;
};

}  // namespace ow
