// Elastic Sketch (Yang et al., SIGCOMM 2018) — basic version.
//
// Separates elephants from mice: a HEAVY part of vote-based buckets holds
// candidate heavy flows exactly; a LIGHT part (counter array) absorbs
// evicted and small flows. On an update that misses the resident key, the
// negative vote grows; when negative/positive exceeds the eviction ratio λ
// the resident is displaced to the light part and the newcomer takes the
// bucket. Heavy keys are directly enumerable, which is why Elastic-style
// solutions only need OmniWindow's flowkey tracker for their light part.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/hash.h"
#include "src/sketch/sketch.h"

namespace ow {

class ElasticSketch final : public InvertibleSketch {
 public:
  /// `heavy_buckets` vote buckets plus a light counter array of
  /// `light_counters` cells (single hashed row, 16-bit saturating counters
  /// as in the paper's light part).
  ElasticSketch(std::size_t heavy_buckets, std::size_t light_counters,
                double eviction_ratio = 8.0,
                std::uint64_t seed = 0xE1A57Full);

  /// Geometry from a memory budget: ~25% heavy / 75% light (the paper's
  /// recommended split). Heavy bucket = key(16) + votes(12) ≈ 28 B; light
  /// counter = 2 B.
  static ElasticSketch WithMemory(std::size_t memory_bytes,
                                  std::size_t depth_unused = 0,
                                  std::uint64_t seed = 0xE1A57Full);

  void Update(const FlowKey& key, std::uint64_t inc) override;
  std::uint64_t Estimate(const FlowKey& key) const override;
  void Reset() override;

  PooledVector<FlowKey> Candidates() const override;

  std::size_t MemoryBytes() const override {
    return heavy_.size() * kHeavyBucketBytes + light_.size() * 2;
  }
  // Heavy key/votes/flag registers + the light array.
  std::size_t NumSalus() const override { return 4; }

  std::size_t heavy_buckets() const noexcept { return heavy_.size(); }
  std::size_t light_counters() const noexcept { return light_.size(); }

  static constexpr std::size_t kHeavyBucketBytes = 28;
  static constexpr std::uint64_t kLightMax = 0xFFFF;  // 16-bit saturation

 private:
  struct Bucket {
    FlowKey key;
    std::uint64_t pos = 0;   // resident flow's count since taking over
    std::uint64_t neg = 0;   // other flows' votes
    bool occupied = false;
    bool ever_evicted = false;  // resident arrived after an eviction: its
                                // early packets live in the light part
  };

  void LightAdd(const FlowKey& key, std::uint64_t inc);
  std::uint64_t LightEstimate(const FlowKey& key) const;

  double ratio_;
  HashFamily hashes_;  // [0]: heavy index, [1]: light index
  std::vector<Bucket> heavy_;
  std::vector<std::uint16_t> light_;
};

}  // namespace ow
