// HashPipe (Sivaraman et al., SOSR 2017).
//
// Heavy-hitter detection entirely in the data plane: a pipeline of d tables
// of (key, count) slots. Stage 1 always inserts the incoming key (evicting
// the resident entry, which is carried to the next stage); later stages keep
// whichever of the carried/resident entries has the larger count. Matches
// the single-pass, one-access-per-stage restriction of RMT hardware.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/hash.h"
#include "src/sketch/sketch.h"

namespace ow {

class HashPipe final : public InvertibleSketch {
 public:
  HashPipe(std::size_t stages, std::size_t slots_per_stage,
           std::uint64_t seed = 0x4A5C41B1Eull);

  /// Geometry from a memory budget. Slot = key(16) + count(8) = 24 bytes.
  static HashPipe WithMemory(std::size_t memory_bytes, std::size_t stages,
                             std::uint64_t seed = 0x4A5C41B1Eull);

  void Update(const FlowKey& key, std::uint64_t inc) override;
  std::uint64_t Estimate(const FlowKey& key) const override;
  void Reset() override;

  PooledVector<FlowKey> Candidates() const override;

  std::size_t MemoryBytes() const override {
    return tables_.size() * slots_ * kSlotBytes;
  }
  // Key and count are separate register arrays per stage.
  std::size_t NumSalus() const override { return tables_.size() * 2; }

  std::size_t stages() const noexcept { return tables_.size(); }
  std::size_t slots() const noexcept { return slots_; }

  static constexpr std::size_t kSlotBytes = 24;

 private:
  struct Slot {
    FlowKey key;
    std::uint64_t count = 0;
    bool occupied = false;
  };

  std::size_t slots_;
  HashFamily hashes_;
  std::vector<std::vector<Slot>> tables_;
};

}  // namespace ow
