#include "src/sketch/mv_sketch.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace ow {

MvSketch::MvSketch(std::size_t depth, std::size_t width, std::uint64_t seed)
    : width_(width), hashes_(depth, seed) {
  if (depth == 0 || width == 0) {
    throw std::invalid_argument("MvSketch: depth and width must be > 0");
  }
  rows_.assign(depth, std::vector<Bucket>(width));
}

MvSketch MvSketch::WithMemory(std::size_t memory_bytes, std::size_t depth,
                              std::uint64_t seed) {
  const std::size_t width =
      std::max<std::size_t>(1, memory_bytes / (depth * kBucketBytes));
  return MvSketch(depth, width, seed);
}

void MvSketch::Update(const FlowKey& key, std::uint64_t inc) {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    Bucket& b = rows_[i][hashes_.Index(i, key.bytes(), width_)];
    b.total += inc;
    if (b.indicator == 0) {
      b.candidate = key;
      b.indicator = std::int64_t(inc);
    } else if (b.candidate == key) {
      b.indicator += std::int64_t(inc);
    } else {
      b.indicator -= std::int64_t(inc);
      if (b.indicator < 0) {
        b.candidate = key;
        b.indicator = -b.indicator;
      }
    }
  }
}

std::uint64_t MvSketch::Estimate(const FlowKey& key) const {
  std::uint64_t best = UINT64_MAX;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Bucket& b = rows_[i][hashes_.Index(i, key.bytes(), width_)];
    // MV-Sketch point estimate: (V + C) / 2 if the bucket votes for this
    // key, (V - C) / 2 otherwise.
    const std::uint64_t est =
        b.candidate == key
            ? (b.total + std::uint64_t(b.indicator)) / 2
            : (b.total - std::uint64_t(b.indicator)) / 2;
    best = std::min(best, est);
  }
  return best == UINT64_MAX ? 0 : best;
}

void MvSketch::Reset() {
  for (auto& row : rows_) {
    std::fill(row.begin(), row.end(), Bucket{});
  }
}

PooledVector<FlowKey> MvSketch::Candidates() const {
  PooledUnorderedSet<FlowKey, FlowKeyHasher> seen;
  for (const auto& row : rows_) {
    for (const Bucket& b : row) {
      if (b.total > 0) seen.insert(b.candidate);
    }
  }
  return {seen.begin(), seen.end()};
}

}  // namespace ow
