#include "src/sketch/spread_sketch.h"

#include "src/sketch/signature.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace ow {

MultiResolutionBitmap::MultiResolutionBitmap(std::size_t levels,
                                             std::size_t bits_per_level)
    : bits_((bits_per_level + 63) / 64 * 64) {
  if (levels == 0 || bits_per_level == 0) {
    throw std::invalid_argument("MultiResolutionBitmap: empty geometry");
  }
  levels_.assign(levels, std::vector<std::uint64_t>(bits_ / 64, 0));
}

std::size_t MultiResolutionBitmap::Insert(std::uint64_t element_hash) {
  // Level = number of leading zeros of the hash, capped at the top level
  // (geometric sampling: level l holds elements with probability 2^-(l+1),
  // the last level catches the remainder).
  std::size_t level = std::min<std::size_t>(
      std::countl_zero(element_hash | 1ull), levels_.size() - 1);
  // Bit position derived from the low bits so it is independent of level
  // selection.
  const std::size_t bit =
      static_cast<std::size_t>(Mix64(element_hash) % bits_);
  levels_[level][bit / 64] |= 1ull << (bit % 64);
  return level;
}

std::size_t MultiResolutionBitmap::SetBits(std::size_t level) const {
  std::size_t n = 0;
  for (std::uint64_t w : levels_[level]) n += std::popcount(w);
  return n;
}

double MultiResolutionBitmap::Estimate() const {
  // Choose the lowest ("base") level that is not saturated, linear-count it
  // and the levels above it, then scale by the base level's sampling rate.
  const double m = double(bits_);
  const std::size_t sat = std::size_t(m * 0.93);
  std::size_t base = 0;
  while (base + 1 < levels_.size() && SetBits(base) > sat) ++base;
  double total = 0;
  for (std::size_t l = base; l < levels_.size(); ++l) {
    const std::size_t set = SetBits(l);
    if (set == 0) continue;
    const double z = m - double(set);
    // Linear counting with a saturation guard.
    const double count = z <= 0.5 ? m * std::log(2 * m) : m * std::log(m / z);
    total += count;
  }
  // Levels below `base` were skipped; they hold a 1 - 2^-base fraction of
  // elements, so scale up by 2^base.
  return total * std::pow(2.0, double(base));
}

SpreadSignature MultiResolutionBitmap::Fold4() const {
  SpreadSignature sig{};
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const std::size_t word = std::min<std::size_t>(l, 3);
    for (std::uint64_t w : levels_[l]) sig[word] |= w;
  }
  return sig;
}

void MultiResolutionBitmap::Reset() {
  for (auto& level : levels_) std::fill(level.begin(), level.end(), 0);
}

SpreadSketch::SpreadSketch(std::size_t depth, std::size_t width,
                           std::size_t mrb_levels, std::size_t mrb_bits,
                           std::uint64_t seed)
    : width_(width), hashes_(depth, seed) {
  if (depth == 0 || width == 0) {
    throw std::invalid_argument("SpreadSketch: depth and width must be > 0");
  }
  rows_.reserve(depth);
  for (std::size_t i = 0; i < depth; ++i) {
    std::vector<Bucket> row;
    row.reserve(width);
    for (std::size_t j = 0; j < width; ++j) {
      row.emplace_back(mrb_levels, mrb_bits);
    }
    rows_.push_back(std::move(row));
  }
}

SpreadSketch SpreadSketch::WithMemory(std::size_t memory_bytes,
                                      std::size_t depth, std::uint64_t seed) {
  constexpr std::size_t kLevels = 8, kBits = 64;
  constexpr std::size_t kBucketBytes = kLevels * kBits / 8 + 16 + 4;
  const std::size_t width =
      std::max<std::size_t>(1, memory_bytes / (depth * kBucketBytes));
  return SpreadSketch(depth, width, kLevels, kBits, seed);
}

void SpreadSketch::Update(const FlowKey& key, std::uint64_t element_hash) {
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    Bucket& b = rows_[i][hashes_.Index(i, key.bytes(), width_)];
    const std::size_t level = b.mrb.Insert(element_hash);
    if (std::int32_t(level) >= b.level) {
      b.level = std::int32_t(level);
      b.candidate = key;
    }
  }
}

double SpreadSketch::EstimateSpread(const FlowKey& key) const {
  double best = -1;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Bucket& b = rows_[i][hashes_.Index(i, key.bytes(), width_)];
    const double est = b.mrb.Estimate();
    if (best < 0 || est < best) best = est;
  }
  return best < 0 ? 0 : best;
}

SpreadSignature SpreadSketch::Signature(const FlowKey& key) const {
  double best = -1;
  const MultiResolutionBitmap* best_mrb = nullptr;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Bucket& b = rows_[i][hashes_.Index(i, key.bytes(), width_)];
    const double est = b.mrb.Estimate();
    if (best < 0 || est < best) {
      best = est;
      best_mrb = &b.mrb;
    }
  }
  return best_mrb ? best_mrb->Fold4() : SpreadSignature{};
}

double SpreadSketch::EstimateFromSignature(const SpreadSignature& sig) const {
  return MrbSignatureEstimate(sig);
}

void SpreadSketch::Reset() {
  for (auto& row : rows_) {
    for (Bucket& b : row) {
      b.mrb.Reset();
      b.level = -1;
      b.candidate = FlowKey();
    }
  }
}

PooledVector<FlowKey> SpreadSketch::Candidates() const {
  PooledUnorderedSet<FlowKey, FlowKeyHasher> seen;
  for (const auto& row : rows_) {
    for (const Bucket& b : row) {
      if (b.level >= 0) seen.insert(b.candidate);
    }
  }
  return {seen.begin(), seen.end()};
}

std::size_t SpreadSketch::MemoryBytes() const {
  if (rows_.empty() || rows_[0].empty()) return 0;
  const std::size_t per_bucket = rows_[0][0].mrb.MemoryBytes() + 16 + 4;
  return rows_.size() * width_ * per_bucket;
}

}  // namespace ow
