// Vector Bloom Filter (Liu et al., TIFS 2016).
//
// Superpoint detection: `k` arrays of small bitmaps. A source key selects
// one bitmap per array; each contacted destination sets one bit in it. The
// spread estimate is the minimum linear-counting estimate across the k
// bitmaps. Not invertible — candidate keys come from OmniWindow's flowkey
// tracking.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/hash.h"
#include "src/sketch/sketch.h"

namespace ow {

class VectorBloomFilter final : public SpreadEstimator {
 public:
  /// `arrays` hash arrays × `bitmaps_per_array` bitmaps × `bits_per_bitmap`
  /// bits. The paper's configuration is 5 arrays of 4096 bitmaps.
  VectorBloomFilter(std::size_t arrays, std::size_t bitmaps_per_array,
                    std::size_t bits_per_bitmap = 64,
                    std::uint64_t seed = 0xB17F11735ull);

  static VectorBloomFilter WithMemory(std::size_t memory_bytes,
                                      std::size_t arrays = 5,
                                      std::uint64_t seed = 0xB17F11735ull);

  void Update(const FlowKey& key, std::uint64_t element_hash) override;
  double EstimateSpread(const FlowKey& key) const override;
  void Reset() override;

  /// AFR signature: first 256 bits of the min-estimate bitmap (exact when
  /// the filter is built with 256-bit bitmaps).
  SpreadSignature Signature(const FlowKey& key) const override;
  double EstimateFromSignature(const SpreadSignature& sig) const override;

  std::size_t MemoryBytes() const override {
    return arrays_.size() * bitmaps_ * bits_ / 8;
  }
  std::size_t NumSalus() const override { return arrays_.size(); }

 private:
  double LinearCount(const std::vector<std::uint64_t>& words) const;
  std::size_t bitmaps_;
  std::size_t bits_;  // multiple of 64
  HashFamily hashes_;
  // arrays_[i][bitmap] -> words
  std::vector<std::vector<std::vector<std::uint64_t>>> arrays_;
};

}  // namespace ow
