#include "src/sketch/hyperloglog.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace ow {

HyperLogLog::HyperLogLog(unsigned precision) : p_(precision) {
  if (precision < 4 || precision > 18) {
    throw std::invalid_argument("HyperLogLog: precision must be in [4, 18]");
  }
  regs_.assign(std::size_t(1) << precision, 0);
}

HyperLogLog HyperLogLog::WithMemory(std::size_t memory_bytes) {
  unsigned p = 4;
  while (p < 18 && (std::size_t(1) << (p + 1)) <= memory_bytes) ++p;
  return HyperLogLog(p);
}

void HyperLogLog::Add(std::uint64_t element_hash) {
  const std::size_t idx = element_hash >> (64 - p_);
  const std::uint64_t rest = element_hash << p_;
  const std::uint8_t rank =
      std::uint8_t(std::min(64 - int(p_), std::countl_zero(rest | 1ull) + 1));
  regs_[idx] = std::max(regs_[idx], rank);
}

double HyperLogLog::Estimate() const {
  const double m = double(regs_.size());
  double inv_sum = 0;
  std::size_t zeros = 0;
  for (std::uint8_t r : regs_) {
    inv_sum += std::ldexp(1.0, -int(r));
    if (r == 0) ++zeros;
  }
  const double alpha =
      m <= 16 ? 0.673 : (m <= 32 ? 0.697 : (m <= 64 ? 0.709
                                                    : 0.7213 / (1 + 1.079 / m)));
  const double raw = alpha * m * m / inv_sum;
  // Small-range correction: fall back to linear counting while registers
  // still contain zeros and the raw estimate is small.
  if (raw <= 2.5 * m && zeros > 0) {
    return m * std::log(m / double(zeros));
  }
  return raw;
}

void HyperLogLog::Reset() {
  std::fill(regs_.begin(), regs_.end(), 0);
}

void HyperLogLog::MergeFrom(const HyperLogLog& other) {
  if (other.p_ != p_) {
    throw std::invalid_argument("HyperLogLog::MergeFrom: precision mismatch");
  }
  for (std::size_t i = 0; i < regs_.size(); ++i) {
    regs_[i] = std::max(regs_[i], other.regs_[i]);
  }
}

}  // namespace ow
