// SpreadSketch (Tang, Huang & Lee, INFOCOM 2020).
//
// Invertible sketch for network-wide super-spreader detection (Q8). Each of
// the d×w buckets holds a multiresolution bitmap (distinct counter), a
// candidate spreader key and the candidate's level. An element whose hash
// has l leading zeros lands in bitmap level l; a key observed at a level at
// least as high as the bucket's current level replaces the candidate, so
// buckets converge on the highest-spread key hashed into them.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/hash.h"
#include "src/sketch/sketch.h"

namespace ow {

/// Multiresolution bitmap: L levels of b bits. Level l samples elements
/// with probability 2^-l, so the structure counts distinct elements over a
/// wide range with small memory.
class MultiResolutionBitmap {
 public:
  MultiResolutionBitmap(std::size_t levels, std::size_t bits_per_level);

  /// Insert an element by hash. Returns the level it landed in.
  std::size_t Insert(std::uint64_t element_hash);

  double Estimate() const;
  void Reset();
  std::size_t MemoryBytes() const {
    return levels_.size() * bits_ / 8;
  }

  std::size_t SetBits(std::size_t level) const;

  /// Fold the bitmap into a 4x64-bit AFR signature: word l ORs all words of
  /// level l (levels >= 3 fold into word 3). Exact when the MRB is built
  /// with 4 levels of 64 bits (the OmniWindow deployment geometry).
  SpreadSignature Fold4() const;

 private:
  std::size_t bits_;
  std::vector<std::vector<std::uint64_t>> levels_;
};

class SpreadSketch final : public SpreadEstimator {
 public:
  SpreadSketch(std::size_t depth, std::size_t width, std::size_t mrb_levels = 8,
               std::size_t mrb_bits = 64,
               std::uint64_t seed = 0x5B3EAD51ull);

  /// Geometry from a memory budget: bucket = MRB + key(16) + level(4).
  static SpreadSketch WithMemory(std::size_t memory_bytes, std::size_t depth,
                                 std::uint64_t seed = 0x5B3EAD51ull);

  void Update(const FlowKey& key, std::uint64_t element_hash) override;
  double EstimateSpread(const FlowKey& key) const override;
  void Reset() override;

  PooledVector<FlowKey> Candidates() const override;

  /// AFR signature: the min-estimate bucket's MRB folded to 4x64 bits.
  SpreadSignature Signature(const FlowKey& key) const override;
  double EstimateFromSignature(const SpreadSignature& sig) const override;

  std::size_t MemoryBytes() const override;
  std::size_t NumSalus() const override { return rows_.size() * 3; }

  std::size_t depth() const noexcept { return rows_.size(); }
  std::size_t width() const noexcept { return width_; }

 private:
  struct Bucket {
    MultiResolutionBitmap mrb;
    FlowKey candidate;
    std::int32_t level = -1;
    Bucket(std::size_t levels, std::size_t bits) : mrb(levels, bits) {}
  };

  std::size_t width_;
  HashFamily hashes_;
  std::vector<std::vector<Bucket>> rows_;
};

}  // namespace ow
