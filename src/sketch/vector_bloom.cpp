#include "src/sketch/vector_bloom.h"

#include "src/sketch/signature.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace ow {

VectorBloomFilter::VectorBloomFilter(std::size_t arrays,
                                     std::size_t bitmaps_per_array,
                                     std::size_t bits_per_bitmap,
                                     std::uint64_t seed)
    : bitmaps_(bitmaps_per_array),
      bits_((bits_per_bitmap + 63) / 64 * 64),
      hashes_(arrays, seed) {
  if (arrays == 0 || bitmaps_per_array == 0 || bits_per_bitmap == 0) {
    throw std::invalid_argument("VectorBloomFilter: empty geometry");
  }
  arrays_.assign(arrays,
                 std::vector<std::vector<std::uint64_t>>(
                     bitmaps_, std::vector<std::uint64_t>(bits_ / 64, 0)));
}

VectorBloomFilter VectorBloomFilter::WithMemory(std::size_t memory_bytes,
                                                std::size_t arrays,
                                                std::uint64_t seed) {
  constexpr std::size_t kBits = 64;
  const std::size_t bitmaps =
      std::max<std::size_t>(1, memory_bytes / (arrays * kBits / 8));
  return VectorBloomFilter(arrays, bitmaps, kBits, seed);
}

void VectorBloomFilter::Update(const FlowKey& key,
                               std::uint64_t element_hash) {
  const std::size_t bit = static_cast<std::size_t>(Mix64(element_hash) % bits_);
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    auto& bitmap = arrays_[i][hashes_.Index(i, key.bytes(), bitmaps_)];
    bitmap[bit / 64] |= 1ull << (bit % 64);
  }
}

double VectorBloomFilter::LinearCount(
    const std::vector<std::uint64_t>& words) const {
  std::size_t set = 0;
  for (std::uint64_t w : words) set += std::popcount(w);
  const double m = double(bits_);
  const double z = m - double(set);
  if (z <= 0.5) return m * std::log(2 * m);  // saturated
  return m * std::log(m / z);
}

double VectorBloomFilter::EstimateSpread(const FlowKey& key) const {
  double best = -1;
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    const double est =
        LinearCount(arrays_[i][hashes_.Index(i, key.bytes(), bitmaps_)]);
    if (best < 0 || est < best) best = est;
  }
  return best < 0 ? 0 : best;
}

SpreadSignature VectorBloomFilter::Signature(const FlowKey& key) const {
  double best = -1;
  const std::vector<std::uint64_t>* best_bitmap = nullptr;
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    const auto& bitmap = arrays_[i][hashes_.Index(i, key.bytes(), bitmaps_)];
    const double est = LinearCount(bitmap);
    if (best < 0 || est < best) {
      best = est;
      best_bitmap = &bitmap;
    }
  }
  SpreadSignature sig{};
  if (best_bitmap) {
    for (std::size_t i = 0; i < 4 && i < best_bitmap->size(); ++i) {
      sig[i] = (*best_bitmap)[i];
    }
  }
  return sig;
}

double VectorBloomFilter::EstimateFromSignature(
    const SpreadSignature& sig) const {
  return LcSignatureEstimate(sig);
}

void VectorBloomFilter::Reset() {
  for (auto& arr : arrays_) {
    for (auto& bitmap : arr) std::fill(bitmap.begin(), bitmap.end(), 0);
  }
}

}  // namespace ow
