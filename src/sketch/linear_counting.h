// Linear Counting (Whang et al., TODS 1990).
//
// Cardinality estimation from the zero-bit fraction of a single bitmap:
// n̂ = m · ln(m / z). Accurate while the bitmap load factor stays moderate;
// used for flow-count monitoring in the paper's evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sketch/sketch.h"

namespace ow {

class LinearCounting final : public CardinalityEstimator {
 public:
  explicit LinearCounting(std::size_t bits);

  static LinearCounting WithMemory(std::size_t memory_bytes) {
    return LinearCounting(memory_bytes * 8);
  }

  void Add(std::uint64_t element_hash) override;
  double Estimate() const override;
  void Reset() override;

  std::size_t MemoryBytes() const override { return words_.size() * 8; }
  std::size_t NumSalus() const override { return 1; }

  std::size_t set_bits() const noexcept { return set_bits_; }
  std::size_t bit_count() const noexcept { return bits_; }

 private:
  std::size_t bits_;
  std::size_t set_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ow
