// Sketch interfaces.
//
// The paper integrates OmniWindow with eight sketch-based telemetry
// algorithms (Exp#2). They fall into three behavioural families, which we
// model as three small abstract interfaces so that the window machinery
// (sub-window instantiation, AFR generation, C&R) is generic over them:
//
//  * FrequencySketch  — per-flow counters: Count-Min, SuMax, MV-Sketch,
//    HashPipe. Queried by flowkey, which is exactly the data-plane query
//    AFR generation performs (paper §4.1).
//  * SpreadEstimator  — per-key distinct counting: SpreadSketch, Vector
//    Bloom Filter (super-spreader detection, Q8).
//  * CardinalityEstimator — stream-wide distinct counting: Linear Counting,
//    HyperLogLog (flow cardinality monitoring).
//
// All sketches report MemoryBytes() and NumSalus() so the switch resource
// ledger (Exp#5) can account for them when deployed in the pipeline model.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/arena.h"
#include "src/common/flowkey.h"

namespace ow {

/// Compact 256-bit distinct-element signature a spread sketch can export
/// per key. Carried in an AFR's four attribute words; OR-mergeable across
/// sub-windows (the controller's distinction-statistics merge).
using SpreadSignature = std::array<std::uint64_t, 4>;

/// Per-flow frequency estimation (packet or byte counts).
class FrequencySketch {
 public:
  virtual ~FrequencySketch() = default;

  /// Record `inc` units (packets or bytes) for `key`.
  virtual void Update(const FlowKey& key, std::uint64_t inc) = 0;

  /// Point query: estimated total for `key`.
  virtual std::uint64_t Estimate(const FlowKey& key) const = 0;

  /// Clear all state (the R half of C&R).
  virtual void Reset() = 0;

  /// Data-plane SRAM footprint.
  virtual std::size_t MemoryBytes() const = 0;

  /// Stateful ALUs a hardware deployment of this instance occupies (one per
  /// independently addressed register array).
  virtual std::size_t NumSalus() const = 0;
};

/// A frequency sketch that additionally tracks candidate heavy keys in the
/// data plane (MV-Sketch, HashPipe). Non-invertible sketches (Count-Min)
/// rely on OmniWindow's flowkey tracking instead.
class InvertibleSketch : public FrequencySketch {
 public:
  /// Distinct candidate heavy keys currently stored in the structure.
  /// Pool-backed: enumerated once per sub-window termination, so the
  /// buffer must recycle for the zero-alloc steady state.
  virtual PooledVector<FlowKey> Candidates() const = 0;
};

/// Per-key spread (distinct destination) estimation for super-spreader
/// detection.
class SpreadEstimator {
 public:
  virtual ~SpreadEstimator() = default;

  /// Record that `key` contacted the element identified by `element_hash`
  /// (e.g. hash of the destination address).
  virtual void Update(const FlowKey& key, std::uint64_t element_hash) = 0;

  /// Estimated number of distinct elements seen for `key`.
  virtual double EstimateSpread(const FlowKey& key) const = 0;

  virtual void Reset() = 0;
  virtual std::size_t MemoryBytes() const = 0;
  virtual std::size_t NumSalus() const = 0;

  /// Candidate spreader keys tracked in the data plane (empty if the
  /// structure is not invertible).
  virtual PooledVector<FlowKey> Candidates() const { return {}; }

  /// 256-bit distinct signature for `key`, derived from the structure's
  /// state (AFR payload for distinction statistics). All-zero if the
  /// structure cannot export one.
  virtual SpreadSignature Signature(const FlowKey& key) const {
    (void)key;
    return {};
  }

  /// Distinct-count estimate from a (possibly merged) signature produced by
  /// this structure's Signature().
  virtual double EstimateFromSignature(const SpreadSignature& sig) const {
    (void)sig;
    return 0;
  }
};

/// Stream-wide distinct counting.
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Record one element by its hash.
  virtual void Add(std::uint64_t element_hash) = 0;

  /// Estimated number of distinct elements added since the last Reset.
  virtual double Estimate() const = 0;

  virtual void Reset() = 0;
  virtual std::size_t MemoryBytes() const = 0;
  virtual std::size_t NumSalus() const = 0;
};

}  // namespace ow
