// Count-Min Sketch (Cormode & Muthukrishnan, 2005).
//
// d rows of w counters; update adds to one counter per row, query takes the
// row-wise minimum. Overestimates only. The workhorse frequency sketch of
// the paper's evaluation (Q10/Q11, Exp#6).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/hash.h"
#include "src/sketch/sketch.h"

namespace ow {

class CountMinSketch final : public FrequencySketch {
 public:
  /// `depth` rows × `width` counters (64-bit).
  CountMinSketch(std::size_t depth, std::size_t width,
                 std::uint64_t seed = 0xC0117417ull);

  /// Build a sketch that fits in `memory_bytes` with the given depth,
  /// mirroring the paper's "8 MB per window, depth 4" configuration.
  static CountMinSketch WithMemory(std::size_t memory_bytes, std::size_t depth,
                                   std::uint64_t seed = 0xC0117417ull);

  void Update(const FlowKey& key, std::uint64_t inc) override;
  std::uint64_t Estimate(const FlowKey& key) const override;
  void Reset() override;

  std::size_t MemoryBytes() const override { return rows_.size() * width_ * 8; }
  std::size_t NumSalus() const override { return rows_.size(); }

  std::size_t depth() const noexcept { return rows_.size(); }
  std::size_t width() const noexcept { return width_; }

  /// Element-wise addition of another sketch with identical geometry and
  /// seed. Used by the state-merge ablation (the straw-man approach of
  /// §4.1 that AFRs replace) and by distributed-merge scenarios.
  void MergeFrom(const CountMinSketch& other);

  /// Direct counter access for the switch-model register mapping and tests.
  std::uint64_t CounterAt(std::size_t row, std::size_t col) const {
    return rows_[row][col];
  }

 private:
  std::size_t width_;
  HashFamily hashes_;
  std::vector<std::vector<std::uint64_t>> rows_;
};

}  // namespace ow
