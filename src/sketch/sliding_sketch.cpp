#include "src/sketch/sliding_sketch.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace ow {

SlidingScanPointer::SlidingScanPointer(std::size_t total_buckets,
                                       Nanos window_period)
    : total_(total_buckets), period_(window_period) {
  if (total_buckets == 0 || window_period <= 0) {
    throw std::invalid_argument("SlidingScanPointer: bad geometry/period");
  }
}

// ---------------------------------------------------------------- CountMin

SlidingCountMin::SlidingCountMin(std::size_t depth, std::size_t width,
                                 Nanos window_period, std::uint64_t seed)
    : width_(width),
      hashes_(depth, seed),
      rows_(depth, std::vector<Cell>(width)),
      scan_(depth * width, window_period) {
  if (depth == 0 || width == 0) {
    throw std::invalid_argument("SlidingCountMin: depth and width must be > 0");
  }
}

void SlidingCountMin::AdvanceTo(Nanos now) {
  scan_.Advance(now, [this](std::size_t flat) {
    Cell& c = rows_[flat / width_][flat % width_];
    c.prev = c.cur;
    c.cur = 0;
  });
}

void SlidingCountMin::Update(const FlowKey& key, std::uint64_t inc,
                             Nanos now) {
  AdvanceTo(now);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    rows_[i][hashes_.Index(i, key.bytes(), width_)].cur += inc;
  }
}

std::uint64_t SlidingCountMin::Estimate(const FlowKey& key, Nanos now) {
  AdvanceTo(now);
  std::uint64_t best = UINT64_MAX;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Cell& c = rows_[i][hashes_.Index(i, key.bytes(), width_)];
    best = std::min(best, c.prev + c.cur);
  }
  return best == UINT64_MAX ? 0 : best;
}

void SlidingCountMin::Reset() {
  for (auto& row : rows_) std::fill(row.begin(), row.end(), Cell{});
}

// ------------------------------------------------------------------- SuMax

SlidingSuMax::SlidingSuMax(std::size_t depth, std::size_t width,
                           Nanos window_period, std::uint64_t seed)
    : width_(width),
      hashes_(depth, seed),
      rows_(depth, std::vector<Cell>(width)),
      scan_(depth * width, window_period) {
  if (depth == 0 || width == 0 || depth > 16) {
    throw std::invalid_argument("SlidingSuMax: bad geometry");
  }
}

void SlidingSuMax::AdvanceTo(Nanos now) {
  scan_.Advance(now, [this](std::size_t flat) {
    Cell& c = rows_[flat / width_][flat % width_];
    c.prev = c.cur;
    c.cur = 0;
  });
}

void SlidingSuMax::Update(const FlowKey& key, std::uint64_t inc, Nanos now) {
  AdvanceTo(now);
  std::size_t idx[16];
  std::uint64_t low = UINT64_MAX;
  const std::size_t d = rows_.size();
  for (std::size_t i = 0; i < d; ++i) {
    idx[i] = hashes_.Index(i, key.bytes(), width_);
    low = std::min(low, rows_[i][idx[i]].cur);
  }
  const std::uint64_t bound = low + inc;
  for (std::size_t i = 0; i < d; ++i) {
    auto& c = rows_[i][idx[i]];
    c.cur = std::max(c.cur, bound);
  }
}

std::uint64_t SlidingSuMax::Estimate(const FlowKey& key, Nanos now) {
  AdvanceTo(now);
  std::uint64_t best = UINT64_MAX;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Cell& c = rows_[i][hashes_.Index(i, key.bytes(), width_)];
    best = std::min(best, c.prev + c.cur);
  }
  return best == UINT64_MAX ? 0 : best;
}

void SlidingSuMax::Reset() {
  for (auto& row : rows_) std::fill(row.begin(), row.end(), Cell{});
}

// --------------------------------------------------------------------- MV

SlidingMvSketch::SlidingMvSketch(std::size_t depth, std::size_t width,
                                 Nanos window_period, std::uint64_t seed)
    : width_(width),
      hashes_(depth, seed),
      rows_(depth, std::vector<Cell>(width)),
      scan_(depth * width, window_period) {
  if (depth == 0 || width == 0) {
    throw std::invalid_argument("SlidingMvSketch: depth and width must be > 0");
  }
}

void SlidingMvSketch::MvUpdate(Zone& z, const FlowKey& key,
                               std::uint64_t inc) {
  z.total += inc;
  if (z.indicator == 0) {
    z.candidate = key;
    z.indicator = std::int64_t(inc);
  } else if (z.candidate == key) {
    z.indicator += std::int64_t(inc);
  } else {
    z.indicator -= std::int64_t(inc);
    if (z.indicator < 0) {
      z.candidate = key;
      z.indicator = -z.indicator;
    }
  }
}

std::uint64_t SlidingMvSketch::MvEstimate(const Zone& z, const FlowKey& key) {
  return z.candidate == key ? (z.total + std::uint64_t(z.indicator)) / 2
                            : (z.total - std::uint64_t(z.indicator)) / 2;
}

void SlidingMvSketch::AdvanceTo(Nanos now) {
  scan_.Advance(now, [this](std::size_t flat) {
    Cell& c = rows_[flat / width_][flat % width_];
    c.prev = c.cur;
    c.cur = Zone{};
  });
}

void SlidingMvSketch::Update(const FlowKey& key, std::uint64_t inc,
                             Nanos now) {
  AdvanceTo(now);
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    MvUpdate(rows_[i][hashes_.Index(i, key.bytes(), width_)].cur, key, inc);
  }
}

std::uint64_t SlidingMvSketch::Estimate(const FlowKey& key, Nanos now) {
  AdvanceTo(now);
  std::uint64_t best = UINT64_MAX;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const Cell& c = rows_[i][hashes_.Index(i, key.bytes(), width_)];
    best = std::min(best, MvEstimate(c.prev, key) + MvEstimate(c.cur, key));
  }
  return best == UINT64_MAX ? 0 : best;
}

PooledVector<FlowKey> SlidingMvSketch::Candidates() const {
  PooledUnorderedSet<FlowKey, FlowKeyHasher> seen;
  for (const auto& row : rows_) {
    for (const Cell& c : row) {
      if (c.prev.total > 0) seen.insert(c.prev.candidate);
      if (c.cur.total > 0) seen.insert(c.cur.candidate);
    }
  }
  return {seen.begin(), seen.end()};
}

void SlidingMvSketch::Reset() {
  for (auto& row : rows_) std::fill(row.begin(), row.end(), Cell{});
}

}  // namespace ow
