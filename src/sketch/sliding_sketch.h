// Sliding Sketch baseline (Gou et al., SIGKDD 2020) — "SS" in the paper.
//
// A general framework that retrofits sliding-window semantics onto hash
// sketches: every bucket is extended to two zones (previous / current
// window) and a scanning pointer sweeps the whole structure once per window
// period, shifting each bucket it passes (current -> previous, clear
// current). Queries combine both zones, so answers cover strictly more than
// one window of traffic — the overestimation the paper measures in Exp#2 and
// Exp#10. Memory per logical counter doubles, halving effective width.
//
// We implement the basic design for the three base sketches the evaluation
// needs: Count-Min, SuMax and MV-Sketch.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/hash.h"
#include "src/common/types.h"
#include "src/sketch/sketch.h"

namespace ow {

/// Scan-pointer bookkeeping shared by all sliding sketches: converts elapsed
/// time into the number of buckets the cleaning pointer passes.
class SlidingScanPointer {
 public:
  SlidingScanPointer(std::size_t total_buckets, Nanos window_period);

  /// Advance simulated time; returns bucket indices do not wrap more than
  /// once per call (callers advance at sub-window granularity). Invokes
  /// `shift(bucket_index)` for every bucket the pointer passes.
  template <typename ShiftFn>
  void Advance(Nanos now, ShiftFn&& shift) {
    if (now <= last_) return;
    // Pointer speed: total_buckets buckets per window period.
    const double buckets =
        double(total_) * double(now - last_) / double(period_);
    double todo = buckets + carry_;
    while (todo >= 1.0) {
      shift(pos_);
      pos_ = (pos_ + 1) % total_;
      todo -= 1.0;
    }
    carry_ = todo;
    last_ = now;
  }

  std::size_t position() const noexcept { return pos_; }

 private:
  std::size_t total_;
  Nanos period_;
  Nanos last_ = 0;
  double carry_ = 0;
  std::size_t pos_ = 0;
};

/// Count-Min under the Sliding Sketch framework.
class SlidingCountMin {
 public:
  /// Same memory budget as a plain CM of (depth × 2·width): each bucket
  /// stores {previous, current}.
  SlidingCountMin(std::size_t depth, std::size_t width, Nanos window_period,
                  std::uint64_t seed = 0xC0117417ull);

  void Update(const FlowKey& key, std::uint64_t inc, Nanos now);
  std::uint64_t Estimate(const FlowKey& key, Nanos now);
  void Reset();

  std::size_t MemoryBytes() const { return rows_.size() * width_ * 16; }
  std::size_t depth() const noexcept { return rows_.size(); }
  std::size_t width() const noexcept { return width_; }

 private:
  void AdvanceTo(Nanos now);
  struct Cell {
    std::uint64_t prev = 0;
    std::uint64_t cur = 0;
  };
  std::size_t width_;
  HashFamily hashes_;
  std::vector<std::vector<Cell>> rows_;
  SlidingScanPointer scan_;
};

/// SuMax (conservative-update CM) under the Sliding Sketch framework.
class SlidingSuMax {
 public:
  SlidingSuMax(std::size_t depth, std::size_t width, Nanos window_period,
               std::uint64_t seed = 0x5117A0Cull);

  void Update(const FlowKey& key, std::uint64_t inc, Nanos now);
  std::uint64_t Estimate(const FlowKey& key, Nanos now);
  void Reset();

  std::size_t MemoryBytes() const { return rows_.size() * width_ * 16; }

 private:
  void AdvanceTo(Nanos now);
  struct Cell {
    std::uint64_t prev = 0;
    std::uint64_t cur = 0;
  };
  std::size_t width_;
  HashFamily hashes_;
  std::vector<std::vector<Cell>> rows_;
  SlidingScanPointer scan_;
};

/// MV-Sketch under the Sliding Sketch framework (used by Exp#10).
class SlidingMvSketch {
 public:
  SlidingMvSketch(std::size_t depth, std::size_t width, Nanos window_period,
                  std::uint64_t seed = 0x3141592653589793ull);

  void Update(const FlowKey& key, std::uint64_t inc, Nanos now);
  std::uint64_t Estimate(const FlowKey& key, Nanos now);
  PooledVector<FlowKey> Candidates() const;
  void Reset();

  std::size_t MemoryBytes() const {
    return rows_.size() * width_ * 2 * 32;
  }

 private:
  void AdvanceTo(Nanos now);
  struct Zone {
    std::uint64_t total = 0;
    std::int64_t indicator = 0;
    FlowKey candidate;
  };
  struct Cell {
    Zone prev;
    Zone cur;
  };
  static void MvUpdate(Zone& z, const FlowKey& key, std::uint64_t inc);
  static std::uint64_t MvEstimate(const Zone& z, const FlowKey& key);

  std::size_t width_;
  HashFamily hashes_;
  std::vector<std::vector<Cell>> rows_;
  SlidingScanPointer scan_;
};

}  // namespace ow
