#include "src/sketch/elastic.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace ow {

ElasticSketch::ElasticSketch(std::size_t heavy_buckets,
                             std::size_t light_counters,
                             double eviction_ratio, std::uint64_t seed)
    : ratio_(eviction_ratio), hashes_(2, seed) {
  if (heavy_buckets == 0 || light_counters == 0 || eviction_ratio <= 0) {
    throw std::invalid_argument("ElasticSketch: bad geometry");
  }
  heavy_.resize(heavy_buckets);
  light_.resize(light_counters, 0);
}

ElasticSketch ElasticSketch::WithMemory(std::size_t memory_bytes,
                                        std::size_t /*depth_unused*/,
                                        std::uint64_t seed) {
  const std::size_t heavy_bytes = memory_bytes / 4;
  const std::size_t heavy =
      std::max<std::size_t>(1, heavy_bytes / kHeavyBucketBytes);
  const std::size_t light =
      std::max<std::size_t>(1, (memory_bytes - heavy_bytes) / 2);
  return ElasticSketch(heavy, light, 8.0, seed);
}

void ElasticSketch::LightAdd(const FlowKey& key, std::uint64_t inc) {
  auto& cell = light_[hashes_.Index(1, key.bytes(), light_.size())];
  cell = std::uint16_t(std::min<std::uint64_t>(kLightMax, cell + inc));
}

std::uint64_t ElasticSketch::LightEstimate(const FlowKey& key) const {
  return light_[hashes_.Index(1, key.bytes(), light_.size())];
}

void ElasticSketch::Update(const FlowKey& key, std::uint64_t inc) {
  Bucket& b = heavy_[hashes_.Index(0, key.bytes(), heavy_.size())];
  if (!b.occupied) {
    b.key = key;
    b.pos = inc;
    b.neg = 0;
    b.occupied = true;
    b.ever_evicted = false;
    return;
  }
  if (b.key == key) {
    b.pos += inc;
    return;
  }
  b.neg += inc;
  if (double(b.neg) / double(std::max<std::uint64_t>(1, b.pos)) < ratio_) {
    // Vote lost: the packet goes to the light part.
    LightAdd(key, inc);
    return;
  }
  // Eviction: the resident's accumulated count moves to the light part and
  // the challenger takes the bucket (its earlier packets are already in
  // the light part, so flag it).
  LightAdd(b.key, b.pos);
  b.key = key;
  b.pos = inc;
  b.neg = 0;
  b.ever_evicted = true;
}

std::uint64_t ElasticSketch::Estimate(const FlowKey& key) const {
  const Bucket& b = heavy_[hashes_.Index(0, key.bytes(), heavy_.size())];
  if (b.occupied && b.key == key) {
    return b.pos + (b.ever_evicted ? LightEstimate(key) : 0);
  }
  return LightEstimate(key);
}

void ElasticSketch::Reset() {
  std::fill(heavy_.begin(), heavy_.end(), Bucket{});
  std::fill(light_.begin(), light_.end(), 0);
}

PooledVector<FlowKey> ElasticSketch::Candidates() const {
  PooledUnorderedSet<FlowKey, FlowKeyHasher> seen;
  for (const Bucket& b : heavy_) {
    if (b.occupied) seen.insert(b.key);
  }
  return {seen.begin(), seen.end()};
}

}  // namespace ow
