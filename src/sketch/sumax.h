// SuMax Sketch (LightGuardian, NSDI 2021).
//
// Count-Min variant with conservative update: an increment only raises the
// counters that would otherwise fall below the new lower bound, which cuts
// overestimation substantially at the same memory. Query is the row-wise
// minimum, so like Count-Min it never underestimates.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/hash.h"
#include "src/sketch/sketch.h"

namespace ow {

class SuMaxSketch final : public FrequencySketch {
 public:
  SuMaxSketch(std::size_t depth, std::size_t width,
              std::uint64_t seed = 0x5117A0Cull);

  static SuMaxSketch WithMemory(std::size_t memory_bytes, std::size_t depth,
                                std::uint64_t seed = 0x5117A0Cull);

  void Update(const FlowKey& key, std::uint64_t inc) override;
  std::uint64_t Estimate(const FlowKey& key) const override;
  void Reset() override;

  std::size_t MemoryBytes() const override { return rows_.size() * width_ * 8; }
  std::size_t NumSalus() const override { return rows_.size(); }

  std::size_t depth() const noexcept { return rows_.size(); }
  std::size_t width() const noexcept { return width_; }

 private:
  std::size_t width_;
  HashFamily hashes_;
  std::vector<std::vector<std::uint64_t>> rows_;
};

}  // namespace ow
