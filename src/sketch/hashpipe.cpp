#include "src/sketch/hashpipe.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace ow {

HashPipe::HashPipe(std::size_t stages, std::size_t slots_per_stage,
                   std::uint64_t seed)
    : slots_(slots_per_stage), hashes_(stages, seed) {
  if (stages == 0 || slots_per_stage == 0) {
    throw std::invalid_argument("HashPipe: stages and slots must be > 0");
  }
  tables_.assign(stages, std::vector<Slot>(slots_per_stage));
}

HashPipe HashPipe::WithMemory(std::size_t memory_bytes, std::size_t stages,
                              std::uint64_t seed) {
  const std::size_t slots =
      std::max<std::size_t>(1, memory_bytes / (stages * kSlotBytes));
  return HashPipe(stages, slots, seed);
}

void HashPipe::Update(const FlowKey& key, std::uint64_t inc) {
  // Stage 1: always insert, evicting the resident entry.
  FlowKey carried_key = key;
  std::uint64_t carried_count = inc;
  {
    Slot& s = tables_[0][hashes_.Index(0, key.bytes(), slots_)];
    if (s.occupied && s.key == key) {
      s.count += inc;
      return;
    }
    std::swap(carried_key, s.key);
    std::swap(carried_count, s.count);
    const bool was_occupied = s.occupied;
    s.occupied = true;
    if (!was_occupied) return;  // evicted nothing
  }
  // Later stages: merge on match, else keep the heavier entry.
  for (std::size_t st = 1; st < tables_.size(); ++st) {
    Slot& s = tables_[st][hashes_.Index(st, carried_key.bytes(), slots_)];
    if (!s.occupied) {
      s.key = carried_key;
      s.count = carried_count;
      s.occupied = true;
      return;
    }
    if (s.key == carried_key) {
      s.count += carried_count;
      return;
    }
    if (carried_count > s.count) {
      std::swap(s.key, carried_key);
      std::swap(s.count, carried_count);
    }
  }
  // The lightest entry falls off the end of the pipe (HashPipe's inherent
  // undercount for evicted mice).
}

std::uint64_t HashPipe::Estimate(const FlowKey& key) const {
  std::uint64_t total = 0;
  for (std::size_t st = 0; st < tables_.size(); ++st) {
    const Slot& s = tables_[st][hashes_.Index(st, key.bytes(), slots_)];
    if (s.occupied && s.key == key) total += s.count;
  }
  return total;
}

void HashPipe::Reset() {
  for (auto& table : tables_) {
    std::fill(table.begin(), table.end(), Slot{});
  }
}

PooledVector<FlowKey> HashPipe::Candidates() const {
  PooledUnorderedSet<FlowKey, FlowKeyHasher> seen;
  for (const auto& table : tables_) {
    for (const Slot& s : table) {
      if (s.occupied) seen.insert(s.key);
    }
  }
  return {seen.begin(), seen.end()};
}

}  // namespace ow
