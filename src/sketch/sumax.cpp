#include "src/sketch/sumax.h"

#include <algorithm>
#include <stdexcept>

namespace ow {

SuMaxSketch::SuMaxSketch(std::size_t depth, std::size_t width,
                         std::uint64_t seed)
    : width_(width), hashes_(depth, seed) {
  if (depth == 0 || width == 0) {
    throw std::invalid_argument("SuMaxSketch: depth and width must be > 0");
  }
  if (depth > 16) {
    throw std::invalid_argument("SuMaxSketch: depth must be <= 16");
  }
  rows_.assign(depth, std::vector<std::uint64_t>(width, 0));
}

SuMaxSketch SuMaxSketch::WithMemory(std::size_t memory_bytes,
                                    std::size_t depth, std::uint64_t seed) {
  const std::size_t width = std::max<std::size_t>(1, memory_bytes / (depth * 8));
  return SuMaxSketch(depth, width, seed);
}

void SuMaxSketch::Update(const FlowKey& key, std::uint64_t inc) {
  // Conservative update ("SuMax" rule): the new lower bound for the flow is
  // min(counters) + inc; each counter only grows up to that bound.
  std::uint64_t low = UINT64_MAX;
  std::size_t idx[16];
  const std::size_t d = rows_.size();
  for (std::size_t i = 0; i < d; ++i) {
    idx[i] = hashes_.Index(i, key.bytes(), width_);
    low = std::min(low, rows_[i][idx[i]]);
  }
  const std::uint64_t bound = low + inc;
  for (std::size_t i = 0; i < d; ++i) {
    rows_[i][idx[i]] = std::max(rows_[i][idx[i]], bound);
  }
}

std::uint64_t SuMaxSketch::Estimate(const FlowKey& key) const {
  std::uint64_t best = UINT64_MAX;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    best = std::min(best, rows_[i][hashes_.Index(i, key.bytes(), width_)]);
  }
  return best == UINT64_MAX ? 0 : best;
}

void SuMaxSketch::Reset() {
  for (auto& row : rows_) std::fill(row.begin(), row.end(), 0);
}

}  // namespace ow
