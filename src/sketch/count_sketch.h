// Count Sketch (Charikar, Chen & Farach-Colton, 2002).
//
// Like Count-Min but each update is multiplied by a per-row random sign, so
// collisions cancel in expectation and the MEDIAN of row estimates is an
// unbiased estimator (two-sided error, unlike Count-Min's overestimate).
// UnivMon builds on Count Sketch at every level.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/hash.h"
#include "src/sketch/sketch.h"

namespace ow {

class CountSketch final : public FrequencySketch {
 public:
  CountSketch(std::size_t depth, std::size_t width,
              std::uint64_t seed = 0xC047C4ull);

  static CountSketch WithMemory(std::size_t memory_bytes, std::size_t depth,
                                std::uint64_t seed = 0xC047C4ull);

  void Update(const FlowKey& key, std::uint64_t inc) override;
  /// Median of signed row estimates, clamped at zero (frequencies are
  /// non-negative).
  std::uint64_t Estimate(const FlowKey& key) const override;
  void Reset() override;

  std::size_t MemoryBytes() const override { return rows_.size() * width_ * 8; }
  std::size_t NumSalus() const override { return rows_.size(); }

  std::size_t depth() const noexcept { return rows_.size(); }
  std::size_t width() const noexcept { return width_; }

 private:
  std::int64_t Sign(std::size_t row, const FlowKey& key) const;

  std::size_t width_;
  HashFamily hashes_;
  HashFamily signs_;
  std::vector<std::vector<std::int64_t>> rows_;
};

}  // namespace ow
