// 256-bit distinct-element signatures.
//
// Distinction statistics cannot be merged across sub-windows as scalars
// without double counting (the same element may appear in several
// sub-windows). OmniWindow's AFRs therefore carry a compact distinct
// SIGNATURE in their four attribute words; signatures OR-merge exactly, and
// the count is estimated from the merged bitmap. Two layouts are used:
//
//  * LC: a flat 256-bit linear-counting bitmap (Vector Bloom Filter /
//    query-engine distinct operators). Good to ~1.4 K distinct elements.
//  * MRB: four 64-bit levels sampling at geometric rates (SpreadSketch) —
//    wider range at the same size.
#pragma once

#include <cstdint>

#include "src/sketch/sketch.h"

namespace ow {

/// Insert an element (by hash) into a flat LC signature.
void LcSignatureInsert(SpreadSignature& sig, std::uint64_t element_hash);

/// Distinct estimate of a flat LC signature.
double LcSignatureEstimate(const SpreadSignature& sig);

/// Insert an element (by hash) into a 4-level MRB signature.
void MrbSignatureInsert(SpreadSignature& sig, std::uint64_t element_hash);

/// Distinct estimate of a 4-level MRB signature.
double MrbSignatureEstimate(const SpreadSignature& sig);

/// OR-merge: the exact union semantics the controller relies on.
inline void MergeSpreadSignature(SpreadSignature& into,
                                 const SpreadSignature& from) {
  for (std::size_t i = 0; i < 4; ++i) into[i] |= from[i];
}

}  // namespace ow
