#include "src/sketch/linear_counting.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ow {

LinearCounting::LinearCounting(std::size_t bits)
    : bits_((bits + 63) / 64 * 64) {
  if (bits == 0) throw std::invalid_argument("LinearCounting: bits must be > 0");
  words_.resize(bits_ / 64, 0);
}

void LinearCounting::Add(std::uint64_t element_hash) {
  const std::size_t b = static_cast<std::size_t>(element_hash % bits_);
  const std::uint64_t mask = 1ull << (b % 64);
  if (!(words_[b / 64] & mask)) {
    words_[b / 64] |= mask;
    ++set_bits_;
  }
}

double LinearCounting::Estimate() const {
  const double m = double(bits_);
  const double z = m - double(set_bits_);
  if (z <= 0.5) return m * std::log(2 * m);  // saturated bitmap
  return m * std::log(m / z);
}

void LinearCounting::Reset() {
  std::fill(words_.begin(), words_.end(), 0);
  set_bits_ = 0;
}

}  // namespace ow
