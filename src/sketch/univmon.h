// UnivMon (Liu et al., SIGCOMM 2016) — universal sketching.
//
// L levels of Count Sketches; a flow participates in level l if its hash
// has at least l leading zero bits (each level samples half the flows of
// the one below). Every level tracks its top-k heavy flows. Any G-sum
// statistic Σ g(f_i) is estimated bottom-up from the per-level heavy
// hitters via the recursion Y_l = 2·Y_{l+1} + Σ_{heavy h at l} g(f_h)·
// (1 − 2·sampled_{l+1}(h)). Per-flow frequency queries fall out of the
// level-0 Count Sketch, and the level heaps give enumerable heavy keys —
// UnivMon is one of the "only store heavy keys" systems the paper's
// flowkey tracking complements.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/common/hash.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/sketch.h"

namespace ow {

class UnivMon final : public InvertibleSketch {
 public:
  /// `levels` Count Sketches of `depth` x `width`, top-`k` heap per level.
  UnivMon(std::size_t levels, std::size_t depth, std::size_t width,
          std::size_t heap_k = 64, std::uint64_t seed = 0x0417140Ull);

  static UnivMon WithMemory(std::size_t memory_bytes, std::size_t depth,
                            std::uint64_t seed = 0x0417140Ull);

  void Update(const FlowKey& key, std::uint64_t inc) override;
  std::uint64_t Estimate(const FlowKey& key) const override;
  void Reset() override;

  /// Union of the per-level heavy-hitter heaps.
  PooledVector<FlowKey> Candidates() const override;

  /// Estimate the G-sum Σ g(count_f) over all flows (the universal
  /// recursion). g must be non-negative.
  double EstimateGsum(const std::function<double(double)>& g) const;

  /// Convenience G-sums: distinct flows (g = 1) and L2^2 (g = x^2).
  double EstimateCardinality() const;
  double EstimateSecondMoment() const;

  std::size_t MemoryBytes() const override;
  std::size_t NumSalus() const override {
    return sketches_.size() * depth_ + sketches_.size();
  }

  std::size_t levels() const noexcept { return sketches_.size(); }

 private:
  /// Level of a flow: leading-zero count of its sampling hash, capped.
  std::size_t LevelOf(const FlowKey& key) const;

  std::size_t depth_;
  std::size_t heap_k_;
  std::uint64_t sample_seed_;
  std::vector<CountSketch> sketches_;
  /// Per-level tracked heavy candidates (flow -> exact-ish tracked count).
  std::vector<std::map<FlowKey, std::uint64_t>> heaps_;
};

}  // namespace ow
