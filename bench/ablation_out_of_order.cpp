// Ablation (§5): out-of-order tolerance — preserved sub-windows vs latency
// spikes.
//
// A two-switch line where the inner link suffers latency spikes that push
// packets past sub-window boundaries. The downstream switch follows the
// embedded (Lamport) sub-window numbers; packets older than the preserve
// horizon cannot be measured into their (recycled) region and escalate to
// the controller as latency-spike copies. The sweep shows the §5 trade-off:
// a larger preserve horizon absorbs more delay in-band, and the
// spike-escalation path catches the rest so frequency results stay exact.
#include <cstdio>
#include <memory>

#include "src/core/network_runner.h"
#include "src/telemetry/query_builder.h"
#include "src/trace/generator.h"

namespace {

using namespace ow;

struct Outcome {
  std::uint64_t measured = 0;
  std::uint64_t stale = 0;
  std::uint64_t spikes_folded = 0;
  double count_agreement = 0;  // downstream/upstream total counts
};

Outcome RunSweep(double spike_rate, Nanos spike_extra,
                 std::uint32_t preserve) {
  TraceConfig tc;
  tc.seed = 31;
  tc.duration = 800 * kMilli;
  tc.packets_per_sec = 20'000;
  tc.num_flows = 2'000;
  TraceGenerator gen(tc);
  const Trace trace = gen.GenerateBackground();

  const QueryDef def = QueryBuilder("count_all")
                           .KeyBy(FlowKeyKind::kDstIp)
                           .Count()
                           .Threshold(1)
                           .Build();

  NetworkRunConfig cfg;
  WindowSpec spec;
  spec.type = WindowType::kTumbling;
  spec.window_size = 50 * kMilli;
  spec.subwindow_size = 50 * kMilli;
  spec.slide = spec.window_size;
  cfg.base = RunConfig::Make(spec);
  cfg.base.data_plane.preserve_subwindows = preserve;
  cfg.num_switches = 2;
  cfg.link = {.latency = 20 * kMicro, .jitter = 10 * kMicro,
              .spike_rate = spike_rate, .spike_extra = spike_extra};

  std::vector<std::uint64_t> totals(2, 0);
  std::size_t which = 0;
  const NetworkRunResult result = RunOmniWindowLine(
      trace,
      [&](std::size_t) {
        return std::make_shared<QueryAdapter>(def, 1 << 14);
      },
      cfg, {});
  (void)which;

  // Total measured packets per switch (from data-plane stats).
  Outcome out;
  out.measured = result.per_switch[1].data_plane.packets_measured;
  out.stale = result.per_switch[1].data_plane.stale_packets;
  out.spikes_folded = result.per_switch[1].controller.spike_packets;
  const double up =
      double(result.per_switch[0].data_plane.packets_measured);
  const double down = double(out.measured + out.spikes_folded);
  out.count_agreement = up > 0 ? down / up : 1.0;
  (void)totals;
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation (§5): preserve horizon vs latency spikes "
              "(two-switch line, 50 ms sub-windows)\n\n");
  std::printf("%10s %12s %9s %10s %8s %14s %11s\n", "spike", "extra(ms)",
              "preserve", "measured", "stale", "spike-folded",
              "agreement");
  for (const double rate : {0.0, 0.01, 0.05}) {
    for (const Nanos extra : {60 * kMilli, 120 * kMilli}) {
      for (const std::uint32_t preserve : {0u, 1u, 2u}) {
        const Outcome o = RunSweep(rate, extra, preserve);
        std::printf("%10.2f %12lld %9u %10llu %8llu %14llu %10.4f\n", rate,
                    (long long)(extra / kMilli), preserve,
                    (unsigned long long)o.measured,
                    (unsigned long long)o.stale,
                    (unsigned long long)o.spikes_folded, o.count_agreement);
      }
      if (rate == 0.0) break;  // extra delay is irrelevant with no spikes
    }
    std::fflush(stdout);
  }
  std::printf("\n(stale = packets past the preserve horizon; they escalate "
              "to the controller and are folded back into pending "
              "sub-windows, so the downstream/upstream agreement stays at "
              "1.0 — no packet is silently lost.)\n");
  return 0;
}
