// Exp#5 (Table 2): switch resource breakdown of Q1.
//
// Builds the OmniWindow data-plane program for Q1 (with the RDMA
// optimization compiled in, as the paper's table includes it) and prints
// the per-feature hardware charges from the resource ledger: stages, SRAM,
// SALUs, VLIW slots and gateways, plus totals and the fraction of a
// Tofino-class budget they occupy. Stage/VLIW sharing makes totals smaller
// than the per-feature sums, as the paper notes.
#include <cstdio>

#include "bench/harness.h"
#include "src/switchsim/stage_planner.h"

int main() {
  using namespace ow;
  using namespace ow::bench;

  const QueryDef def = StandardQuery(1);
  OmniWindowConfig cfg;
  cfg.rdma = true;
  cfg.tracker.capacity = 32 * 1024;  // paper's 32 K flowkey array
  cfg.tracker.bloom_bits = 1 << 20;
  auto app = std::make_shared<QueryAdapter>(def, 1 << 14);
  OmniWindowProgram program(cfg, app);

  ResourceLedger ledger;
  program.ChargeResources(ledger);

  std::printf("Exp#5: switch resource breakdown of Q1 + OmniWindow\n\n");
  std::printf("%s\n", ledger.ToTable().c_str());

  const ResourceUsage total = ledger.Total();
  const ResourceBudget budget;
  std::printf("fits Tofino-class budget: %s\n",
              ledger.Fits(budget) ? "yes" : "NO");
  std::printf("normalized usage: stages %.0f%%  SRAM %.1f%%  SALU %.1f%%  "
              "VLIW %.1f%%  gateways %.1f%%\n",
              100.0 * double(total.stages.size()) / budget.stages,
              100.0 * double(total.sram_bytes) / double(budget.sram_bytes),
              100.0 * double(total.salus) /
                  double(budget.salus_per_stage * budget.stages),
              100.0 * double(total.vliw) /
                  double(budget.vliw_per_stage * budget.stages),
              100.0 * double(total.gateways) /
                  double(budget.gateways_per_stage * budget.stages));

  // Stage placement: can the program actually be laid out into the
  // pipeline respecting per-stage limits and match dependencies?
  std::vector<PlacementRequest> features;
  auto feat = [&](std::string name, int units, int salus, std::size_t sram,
                  int vliw, int gw, std::vector<std::string> after = {}) {
    PlacementRequest req;
    req.feature = std::move(name);
    for (int i = 0; i < units; ++i) {
      req.units.push_back({.salus = salus, .sram_bytes = sram / units,
                           .vliw = vliw, .gateways = gw});
    }
    req.after = std::move(after);
    features.push_back(std::move(req));
  };
  feat("signal", 1, 1, 32 << 10, 3, 2);
  feat("consistency", 1, 0, 0, 2, 1, {"signal"});
  feat("address_location", 1, 0, 16 << 10, 2, 0, {"consistency"});
  feat("app_state", 4, 1, 1 << 20, 1, 0, {"address_location"});
  feat("flowkey_tracking", 4, 1, 1280 << 10, 2, 2, {"consistency"});
  feat("afr_generation", 1, 0, 0, 4, 3, {"app_state", "flowkey_tracking"});
  feat("in_switch_reset", 2, 1, 32 << 10, 3, 3, {"address_location"});
  feat("rdma_opt", 3, 1, 928 << 10, 7, 5, {"afr_generation"});

  std::string error;
  StagePlanner planner(budget);
  const auto plan = planner.Plan(features, &error);
  if (!plan) {
    std::printf("\nstage placement: FAILED (%s)\n", error.c_str());
    return 1;
  }
  std::printf("\nstage placement (dependency-ordered greedy): %d stages\n",
              plan->stages_used);
  for (const auto& f : features) {
    std::printf("  %-18s stages %d..%d\n", f.feature.c_str(),
                plan->FirstStageOf(f.feature), plan->LastStageOf(f.feature));
  }
  return 0;
}
