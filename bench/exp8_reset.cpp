// Exp#8 (Figure 13): time of in-switch reset.
//
// Four registers of 64 K two-byte entries are cleared either by the
// conventional switch-OS write path (sequential, so linear in the number of
// registers) or by OmniWindow's recirculating clear packets (OW-4/8/16 =
// number of concurrent clear packets; one pass resets the same position of
// every register, so register count does not matter). Expected shape: OS
// grows linearly into seconds; OmniWindow stays at milliseconds, inversely
// proportional to the clear-packet count.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/switchsim/pipeline.h"
#include "src/switchsim/register_array.h"
#include "src/switchsim/switch_os.h"

namespace {

using namespace ow;

constexpr std::size_t kEntries = 64 * 1024;

/// Minimal clear-packet program: each pass consumes one reset index and
/// clears that position of every attached register (exactly the §4.3
/// data-plane behaviour).
class ResetProgram : public SwitchProgram {
 public:
  explicit ResetProgram(std::size_t registers) {
    for (std::size_t i = 0; i < registers; ++i) {
      regs_.push_back(std::make_unique<RegisterArray>(
          "r" + std::to_string(i), kEntries, 2));
    }
  }

  void Process(Packet& p, Nanos, PacketSource, PipelineActions& act) override {
    if (p.ow.flag != OwFlag::kReset) {
      act.drop = true;
      return;
    }
    const std::uint32_t idx = reset_counter_++;
    if (idx >= kEntries) {
      act.drop = true;
      return;
    }
    // One pass writes the same position of all registers (they live in
    // different stages, one SALU access each).
    for (auto& r : regs_) r->ControlWrite(idx, 0);
    act.recirculate.push_back(p);
    act.drop = true;
  }

  std::vector<RegisterArray*> Registers() override { return {}; }

  std::uint32_t reset_counter_ = 0;
  std::vector<std::unique_ptr<RegisterArray>> regs_;
};

Nanos MeasureOmniReset(std::size_t registers, std::size_t clear_packets) {
  Switch sw(0);
  auto prog = std::make_shared<ResetProgram>(registers);
  sw.SetProgram(prog);
  // Dirty the registers.
  for (auto& r : prog->regs_) {
    for (std::size_t i = 0; i < kEntries; ++i) r->ControlWrite(i, 0xFF);
  }
  for (std::size_t i = 0; i < clear_packets; ++i) {
    Packet p;
    p.ow.present = true;
    p.ow.flag = OwFlag::kReset;
    sw.EnqueueFromWire(p, 0);
  }
  const Nanos done = sw.RunUntilIdle(100 * kSecond);
  // Verify the reset completed.
  for (auto& r : prog->regs_) {
    for (std::size_t i = 0; i < kEntries; i += 4'096) {
      if (r->ControlRead(i) != 0) return -1;
    }
  }
  return done;
}

}  // namespace

int main() {
  std::printf("Exp#8: in-switch reset time, registers of 64 K x 2 B\n\n");
  std::printf("%10s %12s %12s %12s %12s\n", "registers", "OS", "OW-4", "OW-8",
              "OW-16");
  SwitchOsDriver os;
  for (std::size_t regs = 1; regs <= 4; ++regs) {
    const Nanos os_time = Nanos(regs) * os.ResetCost(kEntries);
    const Nanos ow4 = MeasureOmniReset(regs, 4);
    const Nanos ow8 = MeasureOmniReset(regs, 8);
    const Nanos ow16 = MeasureOmniReset(regs, 16);
    std::printf("%10zu %9.0f ms %9.2f ms %9.2f ms %9.2f ms\n", regs,
                double(os_time) / 1e6, double(ow4) / 1e6, double(ow8) / 1e6,
                double(ow16) / 1e6);
  }
  std::printf("\n(OS resets registers sequentially -> linear; one clear "
              "packet resets the same index of all registers in one pass -> "
              "flat in register count.)\n");
  return 0;
}
