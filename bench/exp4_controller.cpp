// Exp#4 (Figure 10): controller time usage breakdown.
//
// Runs Q1 through the full pipeline under tumbling and sliding windows and
// prints, per sub-window of one complete window, the controller's five
// operations: O1 collect AFRs (simulated I/O model), O2 insert into the
// key-value table, O3 merge, O4 process the completed window, O5 evict the
// oldest sub-window (sliding only; O2–O5 are measured wall time of the real
// data-structure work). Expected shape: totals of a few ms, insertion (O2)
// dominant, sliding adds O4/O5 overhead but stays orders of magnitude below
// the 100 ms sub-window.
#include <cstdio>

#include "bench/harness.h"

namespace {

using namespace ow;
using namespace ow::bench;

void Report(const char* title, const std::vector<SubWindowTiming>& timings,
            std::size_t first, std::size_t count) {
  std::printf("%s\n", title);
  std::printf("%6s %12s %12s %12s %12s %12s %12s\n", "sub", "O1-collect",
              "O2-insert", "O3-merge", "O4-process", "O5-evict", "total");
  double avg_total = 0;
  std::size_t n = 0;
  for (const auto& t : timings) {
    if (t.subwindow < first || t.subwindow >= first + count) continue;
    std::printf("%6u %9.3f ms %9.3f ms %9.3f ms %9.3f ms %9.3f ms %9.3f ms\n",
                t.subwindow, double(t.o1_collect) / 1e6,
                double(t.o2_insert) / 1e6, double(t.o3_merge) / 1e6,
                double(t.o4_process) / 1e6, double(t.o5_evict) / 1e6,
                double(t.Total()) / 1e6);
    avg_total += double(t.Total()) / 1e6;
    ++n;
  }
  if (n) std::printf("average per sub-window: %.3f ms\n\n", avg_total / n);
}

}  // namespace

int main(int argc, char** argv) {
  // --obs-out=<prefix>: arm span tracing and dump <prefix>.stats.json +
  // <prefix>.trace.json at exit (docs/observability.md).
  const std::optional<std::string> obs_out = ObsOutFromArgs(argc, argv);
  const Trace trace = MakeEvalTrace(/*seed=*/4004);
  std::printf("Exp#4: controller time breakdown, Q1 (trace: %zu packets)\n\n",
              trace.packets.size());
  EvalParams params;
  const QueryDef def = StandardQuery(1);

  for (const bool sliding : {false, true}) {
    auto app = std::make_shared<QueryAdapter>(def, params.window_cells / 4);
    const WindowSpec spec =
        sliding ? SlidingSpec(params) : TumblingSpec(params);
    const RunResult result = RunOmniWindow(
        trace, app, RunConfig::Make(spec),
        [&](TableView table) { return app->Detect(table); });
    // Report the second complete window's five sub-windows (the first is
    // warm-up).
    Report(sliding ? "(b) sliding window" : "(a) tumbling window",
           result.timings, 5, 5);
  }

  // (c) merge-thread sweep: O2+O3 per sub-window with the sharded parallel
  // merge engine at 1/2/4/8 threads (critical-path CPU attribution — the
  // wall time on a host with one free core per thread).
  std::printf("(c) sliding window, merge-thread sweep\n");
  std::printf("%8s %16s %16s %12s\n", "threads", "O2-insert(avg)",
              "O3-merge(avg)", "speedup");
  double base = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto app = std::make_shared<QueryAdapter>(def, params.window_cells / 4);
    RunConfig cfg = RunConfig::Make(SlidingSpec(params));
    cfg.controller.merge_threads = threads;
    const RunResult result = RunOmniWindow(
        trace, app, cfg,
        [&](TableView table) { return app->Detect(table); });
    double o2 = 0, o3 = 0;
    std::size_t n = 0;
    for (const auto& t : result.timings) {
      if (t.subwindow < 5 || t.subwindow >= 15) continue;
      o2 += double(t.o2_insert);
      o3 += double(t.o3_merge);
      ++n;
    }
    if (!n) continue;
    o2 /= double(n) * 1e3;  // us
    o3 /= double(n) * 1e3;
    if (threads == 1) base = o2 + o3;
    std::printf("%8zu %13.1f us %13.1f us %11.2fx\n", threads, o2, o3,
                base / (o2 + o3));
  }
  if (obs_out && !DumpObs(*obs_out)) {
    std::fprintf(stderr, "failed to write obs dump to %s.*\n",
                 obs_out->c_str());
    return 1;
  }
  return 0;
}
