// Ablation (§4.1): why merge AFRs instead of results or states?
//
// Heavy-hitter detection over five 100 ms sub-windows merged into a 500 ms
// window, three ways:
//   result merge — detect per sub-window with a scaled threshold, union the
//                  reports (loses flows split across sub-windows;
//                  the paper's 60+80 < 100 example);
//   state merge  — add the five sub-window Count-Min sketches and query the
//                  merged sketch (collision error accumulates);
//   AFR merge    — query each sub-window per flow, sum the AFRs
//                  (OmniWindow's approach).
// Expected shape: AFR merge dominates on recall vs result merge and on
// precision vs state merge.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/sketch/count_min.h"

namespace {

using namespace ow;
using namespace ow::bench;

constexpr Nanos kWindow = 500 * kMilli;
constexpr Nanos kSub = 100 * kMilli;
constexpr std::uint64_t kThreshold = 400;
constexpr std::size_t kDepth = 4;
constexpr std::size_t kSubWidth = 384;  // deliberately tight memory

struct Scores {
  PrecisionRecall result_merge;
  PrecisionRecall state_merge;
  PrecisionRecall afr_merge;
};

}  // namespace

int main() {
  const Trace trace = MakeEvalTrace(/*seed=*/555);
  std::printf("Ablation (§4.1): sub-window merging strategies, Count-Min "
              "heavy hitters\n\n");

  QueryDef def;
  def.key_kind = FlowKeyKind::kFiveTuple;
  def.aggregate = QueryAggregate::kCount;
  def.threshold = kThreshold;
  IdealQueryEngine ideal(trace);

  double state_err = 0, afr_err = 0;
  std::size_t err_n = 0;

  std::vector<BaselineWindowResult> truth, rm, rms, sm, am;
  const std::size_t windows = std::size_t(trace.Duration() / kWindow) + 1;
  for (std::size_t wi = 0; wi < windows; ++wi) {
    const Nanos start = Nanos(wi) * kWindow;
    // Five per-sub-window sketches plus per-sub-window key sets.
    std::vector<CountMinSketch> subs;
    for (int s = 0; s < 5; ++s) subs.emplace_back(kDepth, kSubWidth);
    std::vector<FlowSet> keys(5);
    for (const Packet& p : trace.packets) {
      if (p.ts < start) continue;
      if (p.ts >= start + kWindow) break;
      const int s = std::min(4, int((p.ts - start) / kSub));
      const FlowKey key = p.Key(FlowKeyKind::kFiveTuple);
      subs[std::size_t(s)].Update(key, 1);
      keys[std::size_t(s)].insert(key);
    }
    FlowSet all_keys;
    for (const auto& ks : keys) all_keys.insert(ks.begin(), ks.end());

    // (a) result merge: union of per-sub-window detections. Two variants:
    // the full window threshold per sub-window (the paper's 60+80 < 100
    // example — misses split flows) and threshold/W (recovers some splits
    // but floods false positives).
    FlowSet result_detect, result_scaled_detect;
    for (int s = 0; s < 5; ++s) {
      for (const FlowKey& key : keys[std::size_t(s)]) {
        const std::uint64_t est = subs[std::size_t(s)].Estimate(key);
        if (est >= kThreshold) result_detect.insert(key);
        if (est >= kThreshold / 5) result_scaled_detect.insert(key);
      }
    }
    // (b) state merge: element-wise sum of the five sketches.
    CountMinSketch merged(kDepth, kSubWidth);
    for (const auto& s : subs) merged.MergeFrom(s);
    FlowSet state_detect;
    for (const FlowKey& key : all_keys) {
      if (merged.Estimate(key) >= kThreshold) state_detect.insert(key);
    }
    // (c) AFR merge: per-flow query of each sub-window, summed.
    FlowSet afr_detect;
    const FlowCounts exact =
        ideal.Aggregate(def, start, start + kWindow);
    for (const FlowKey& key : all_keys) {
      std::uint64_t total = 0;
      for (const auto& s : subs) total += s.Estimate(key);
      if (total >= kThreshold) afr_detect.insert(key);
      auto t = exact.find(key);
      if (t != exact.end() && t->second >= 20) {
        // Estimation error of the two mergeable strategies per flow.
        state_err += std::abs(double(merged.Estimate(key)) -
                              double(t->second)) /
                     double(t->second);
        afr_err +=
            std::abs(double(total) - double(t->second)) / double(t->second);
        ++err_n;
      }
    }

    const Nanos end = start + kWindow;
    truth.push_back({start, end, ideal.Evaluate(def, start, end)});
    rm.push_back({start, end, std::move(result_detect)});
    rms.push_back({start, end, std::move(result_scaled_detect)});
    sm.push_back({start, end, std::move(state_detect)});
    am.push_back({start, end, std::move(afr_detect)});
  }

  auto show = [&](const char* name, const std::vector<BaselineWindowResult>& got) {
    const PrecisionRecall pr = WindowedPrecisionRecall(got, truth);
    std::printf("  %-14s precision %6.3f  recall %6.3f\n", name, pr.precision,
                pr.recall);
  };
  show("result merge", rm);
  show("result merge T/W", rms);
  show("state merge", sm);
  show("AFR merge", am);
  if (err_n) {
    std::printf("\n  per-flow AARE (flows >= 20 pkts): state merge %.4f, "
                "AFR merge %.4f\n",
                state_err / double(err_n), afr_err / double(err_n));
  }
  std::printf("\n(result merge: threshold split across sub-windows misses "
              "split flows or floods false positives; state merge: counter "
              "collisions accumulate across instances; AFR merge keeps "
              "per-flow error at the single-sub-window level.)\n");
  return 0;
}
