#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "src/obs/obs.h"

namespace ow::bench {

std::optional<std::string> ObsOutFromArgs(int argc, char** argv) {
  constexpr const char* kFlag = "--obs-out=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      std::string prefix = argv[i] + std::strlen(kFlag);
      if (prefix.empty()) return std::nullopt;
      obs::Global().SetTracing(true);
      return prefix;
    }
  }
  return std::nullopt;
}

bool DumpObs(const std::string& prefix) {
  return obs::Global().DumpToFiles(prefix);
}

bool WriteThroughputJson(const std::string& path, const std::string& bench,
                         const std::string& trace_desc, double min_time_sec,
                         const std::string& item_name,
                         const std::vector<BenchThroughputRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", bench.c_str());
  std::fprintf(f, "  \"trace\": %s,\n", trace_desc.c_str());
  std::fprintf(f, "  \"min_time_sec\": %.3f,\n", min_time_sec);
  std::fprintf(f, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchThroughputRow& r = rows[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"%ss\": %llu, \"rounds\": %d, "
                 "\"ns_per_%s\": %.1f, \"%ss_per_sec\": %.0f",
                 r.workload.c_str(), item_name.c_str(),
                 static_cast<unsigned long long>(r.items), r.rounds,
                 item_name.c_str(), r.ns_per_item, item_name.c_str(),
                 r.items_per_sec);
    if (r.threads >= 0) std::fprintf(f, ", \"threads\": %d", r.threads);
    if (r.critical_path_speedup > 0) {
      std::fprintf(f, ", \"critical_path_speedup\": %.2f",
                   r.critical_path_speedup);
    }
    if (r.allocs_per_item >= 0) {
      std::fprintf(f, ", \"allocs_per_%s\": %.4f", item_name.c_str(),
                   r.allocs_per_item);
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

double MinTimeFromArgs(int argc, char** argv, double def) {
  constexpr const char* kFlag = "--min-time=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      const double v = std::atof(argv[i] + std::strlen(kFlag));
      if (v > 0) return v;
    }
  }
  return def;
}

std::string OutPathFromArgs(int argc, char** argv, const std::string& def) {
  constexpr const char* kFlag = "--out=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0 &&
        argv[i][std::strlen(kFlag)] != '\0') {
      return argv[i] + std::strlen(kFlag);
    }
  }
  return def;
}

Trace MakeEvalTrace(std::uint64_t seed, Nanos duration, double pps,
                    std::size_t flows) {
  TraceConfig cfg;
  cfg.seed = seed;
  cfg.duration = duration;
  cfg.packets_per_sec = pps;
  cfg.num_flows = flows;
  TraceGenerator gen(cfg);
  return gen.GenerateEvaluationTrace();
}

const char* MechanismName(Mechanism m) {
  switch (m) {
    case Mechanism::kItw: return "ITW";
    case Mechanism::kIsw: return "ISW";
    case Mechanism::kTw1: return "TW1";
    case Mechanism::kTw2: return "TW2";
    case Mechanism::kOtw: return "OTW";
    case Mechanism::kOsw: return "OSW";
  }
  return "?";
}

WindowSpec TumblingSpec(const EvalParams& p) {
  WindowSpec spec;
  spec.type = WindowType::kTumbling;
  spec.window_size = p.window_size;
  spec.slide = p.window_size;
  spec.subwindow_size = p.subwindow_size;
  return spec;
}

WindowSpec SlidingSpec(const EvalParams& p) {
  WindowSpec spec;
  spec.type = WindowType::kSliding;
  spec.window_size = p.window_size;
  spec.slide = p.slide;
  spec.subwindow_size = p.subwindow_size;
  return spec;
}

std::vector<BaselineWindowResult> ToBaselineResults(const RunResult& result,
                                                    Nanos subwindow_size) {
  std::vector<BaselineWindowResult> out;
  out.reserve(result.windows.size());
  for (const auto& w : result.windows) {
    out.push_back({Nanos(w.span.first) * subwindow_size,
                   Nanos(w.span.last + 1) * subwindow_size, w.detected});
  }
  return out;
}

std::vector<BaselineWindowResult> RunQueryMechanism(Mechanism m,
                                                    const QueryDef& def,
                                                    const Trace& trace,
                                                    const EvalParams& params) {
  switch (m) {
    case Mechanism::kItw:
      return RunIdealTumbling(def, trace, params.window_size);
    case Mechanism::kIsw:
      return RunIdealSliding(def, trace, params.window_size, params.slide);
    case Mechanism::kTw1:
      return RunTumblingBaseline(TumblingBaselineKind::kTw1, def, trace,
                                 params.window_size, params.window_cells,
                                 params.cr_time);
    case Mechanism::kTw2:
      return RunTumblingBaseline(TumblingBaselineKind::kTw2, def, trace,
                                 params.window_size, params.window_cells,
                                 params.cr_time);
    case Mechanism::kOtw:
    case Mechanism::kOsw: {
      // Paper §9.1: each sub-window gets 1/4 of the original window memory.
      auto app =
          std::make_shared<QueryAdapter>(def, params.window_cells / 4);
      const WindowSpec spec =
          m == Mechanism::kOtw ? TumblingSpec(params) : SlidingSpec(params);
      const RunResult result = RunOmniWindow(
          trace, app, RunConfig::Make(spec),
          [&](TableView table) { return app->Detect(table); });
      return ToBaselineResults(result, params.subwindow_size);
    }
  }
  return {};
}

PrecisionRecall ScoreQueryMechanism(Mechanism m, const QueryDef& def,
                                    const Trace& trace,
                                    const EvalParams& params) {
  const auto got = RunQueryMechanism(m, def, trace, params);
  const auto truth =
      RunIdealSliding(def, trace, params.window_size, params.slide);
  return WindowedPrecisionRecall(got, truth);
}

}  // namespace ow::bench
