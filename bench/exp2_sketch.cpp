// Exp#2 (Figure 8): sketch-based telemetry algorithms under OmniWindow.
//
// Eight sketch algorithms across four tasks, each under the paper's window
// settings:
//   Q8  super-spreaders  — SpreadSketch (SPS), Vector Bloom Filter (VBF)
//   Q9  heavy hitters    — MV-Sketch (MV), HashPipe (HP)
//   Q10 per-flow volume  — Count-Min (CM), SuMax (SM)         [AARE]
//   Q11 flow cardinality — Linear Counting (LC), HyperLogLog  [ARE]
// Window settings: ITW / TW1 / TW2 / OTW (tumbling), ISW / SS / OSW
// (sliding; SS where the Sliding Sketch framework applies). Expected shape:
// OTW ≈ TW2 ≈ ITW at 1/4 memory; OSW ≈ ISW and far better than SS, whose
// answers span more than one window.
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>

#include "bench/harness.h"
#include "src/sketch/count_min.h"
#include "src/sketch/elastic.h"
#include "src/sketch/univmon.h"
#include "src/sketch/hashpipe.h"
#include "src/sketch/hyperloglog.h"
#include "src/sketch/linear_counting.h"
#include "src/telemetry/cardinality_apps.h"
#include "src/sketch/mv_sketch.h"
#include "src/sketch/sliding_sketch.h"
#include "src/sketch/spread_sketch.h"
#include "src/sketch/sumax.h"
#include "src/sketch/vector_bloom.h"

namespace {

using namespace ow;
using namespace ow::bench;

constexpr Nanos kWindow = 500 * kMilli;
constexpr Nanos kSlide = 100 * kMilli;
constexpr Nanos kSub = 100 * kMilli;
constexpr Nanos kCrTime = 60 * kMilli;           // TW1 blackout
constexpr std::size_t kWindowBytes = 512 << 10;  // full-window memory
constexpr std::uint64_t kHhThreshold = 400;      // Q9 packets per window
constexpr double kSpreadThreshold = 150;         // Q8 distinct dsts
constexpr std::size_t kDepth = 4;

using Windows = std::vector<BaselineWindowResult>;

void PrintPr(const char* mech, const PrecisionRecall& pr) {
  std::printf("    %-4s precision %6.3f  recall %6.3f\n", mech, pr.precision,
              pr.recall);
}

Windows OmniToWindows(const RunResult& result) {
  return ToBaselineResults(result, kSub);
}

// ------------------------------------------------------------- Q9: heavy

QueryDef HhDef() {
  QueryDef def;
  def.name = "Q9_heavy_hitter";
  def.key_kind = FlowKeyKind::kFiveTuple;
  def.aggregate = QueryAggregate::kCount;
  def.threshold = kHhThreshold;
  return def;
}

template <typename SketchT>
Windows RunHhTumblingBaseline(const Trace& trace, bool tw1) {
  auto sketch = SketchT::WithMemory(kWindowBytes, kDepth);
  Windows out;
  Nanos start = 0;
  auto flush = [&] {
    BaselineWindowResult w{start, start + kWindow, {}};
    for (const FlowKey& key : sketch.Candidates()) {
      if (sketch.Estimate(key) >= kHhThreshold) w.detected.insert(key);
    }
    out.push_back(std::move(w));
    sketch.Reset();
    start += kWindow;
  };
  for (const Packet& p : trace.packets) {
    while (p.ts >= start + kWindow) flush();
    if (tw1 && p.ts < start + kCrTime) continue;
    sketch.Update(p.Key(FlowKeyKind::kFiveTuple), 1);
  }
  flush();
  return out;
}

template <typename SketchT>
Windows RunHhOmniWindow(const Trace& trace, bool sliding) {
  auto app = std::make_shared<FrequencySketchApp>(
      "hh", FlowKeyKind::kFiveTuple, FrequencyValue::kPackets, [] {
        return std::make_unique<SketchT>(
            SketchT::WithMemory(kWindowBytes / 4, kDepth));
      });
  EvalParams params;
  const WindowSpec spec = sliding ? SlidingSpec(params) : TumblingSpec(params);
  const RunResult result = RunOmniWindow(
      trace, app, RunConfig::Make(spec), [&](TableView table) {
        FlowSet set;
        table.ForEach([&](const KvSlot& slot) {
          if (slot.attrs[0] >= kHhThreshold) set.insert(slot.key);
        });
        return set;
      });
  return OmniToWindows(result);
}

Windows RunHhSlidingSketchMv(const Trace& trace) {
  // Sliding Sketch over MV: two zones per bucket -> half width at equal
  // memory.
  SlidingMvSketch mv(kDepth,
                     std::max<std::size_t>(1, kWindowBytes / (kDepth * 64)),
                     kWindow);
  Windows out;
  Nanos next_emit = kWindow;
  for (const Packet& p : trace.packets) {
    while (p.ts >= next_emit) {
      BaselineWindowResult w{next_emit - kWindow, next_emit, {}};
      for (const FlowKey& key : mv.Candidates()) {
        if (mv.Estimate(key, next_emit) >= kHhThreshold) {
          w.detected.insert(key);
        }
      }
      out.push_back(std::move(w));
      next_emit += kSlide;
    }
    mv.Update(p.Key(FlowKeyKind::kFiveTuple), 1, p.ts);
  }
  return out;
}

void RunQ9(const Trace& trace) {
  const QueryDef def = HhDef();
  const Windows truth = RunIdealSliding(def, trace, kWindow, kSlide);
  auto score = [&](const Windows& got) {
    return WindowedPrecisionRecall(got, truth);
  };
  std::printf("Q9 heavy hitters (threshold %llu pkts)\n",
              (unsigned long long)kHhThreshold);

  std::printf("  MV-Sketch:\n");
  PrintPr("ITW", score(RunIdealTumbling(def, trace, kWindow)));
  PrintPr("TW1", score(RunHhTumblingBaseline<MvSketch>(trace, true)));
  PrintPr("TW2", score(RunHhTumblingBaseline<MvSketch>(trace, false)));
  PrintPr("OTW", score(RunHhOmniWindow<MvSketch>(trace, false)));
  PrintPr("ISW", score(truth));
  PrintPr("SS", score(RunHhSlidingSketchMv(trace)));
  PrintPr("OSW", score(RunHhOmniWindow<MvSketch>(trace, true)));
  std::fflush(stdout);

  std::printf("  HashPipe:\n");
  PrintPr("ITW", score(RunIdealTumbling(def, trace, kWindow)));
  PrintPr("TW1", score(RunHhTumblingBaseline<HashPipe>(trace, true)));
  PrintPr("TW2", score(RunHhTumblingBaseline<HashPipe>(trace, false)));
  PrintPr("OTW", score(RunHhOmniWindow<HashPipe>(trace, false)));
  PrintPr("ISW", score(truth));
  PrintPr("OSW", score(RunHhOmniWindow<HashPipe>(trace, true)));
  std::fflush(stdout);

  // Beyond the paper's Figure 8: the universal-measurement solutions its
  // flowkey-tracking design cites (Elastic Sketch, UnivMon) under the same
  // window settings.
  std::printf("  ElasticSketch (extension):\n");
  PrintPr("TW2", score(RunHhTumblingBaseline<ElasticSketch>(trace, false)));
  PrintPr("OTW", score(RunHhOmniWindow<ElasticSketch>(trace, false)));
  PrintPr("OSW", score(RunHhOmniWindow<ElasticSketch>(trace, true)));
  std::fflush(stdout);
  std::printf("  UnivMon (extension):\n");
  PrintPr("TW2", score(RunHhTumblingBaseline<UnivMon>(trace, false)));
  PrintPr("OTW", score(RunHhOmniWindow<UnivMon>(trace, false)));
  PrintPr("OSW", score(RunHhOmniWindow<UnivMon>(trace, true)));
  std::fflush(stdout);
}

// ---------------------------------------------------------- Q8: spreaders

QueryDef SpreadDef() {
  QueryDef def;
  def.name = "Q8_super_spreader";
  def.key_kind = FlowKeyKind::kSrcIp;
  def.aggregate = QueryAggregate::kDistinct;
  def.element = [](const Packet& p) {
    return HashValue(p.ft.dst_ip, 0xE1E83A17ull);
  };
  def.threshold = std::uint64_t(kSpreadThreshold);
  return def;
}

std::unique_ptr<SpreadEstimator> MakeSpreadEstimator(bool sps,
                                                     std::size_t bytes) {
  if (sps) {
    return std::make_unique<SpreadSketch>(
        SpreadSketch::WithMemory(bytes, kDepth));
  }
  return std::make_unique<VectorBloomFilter>(
      5, std::max<std::size_t>(64, bytes / (5 * 32)), 256);
}

Windows RunSpreadTumblingBaseline(const Trace& trace, bool sps, bool tw1) {
  auto est = MakeSpreadEstimator(sps, kWindowBytes);
  const QueryDef def = SpreadDef();
  Windows out;
  Nanos start = 0;
  FlowSet window_keys;  // key list a telemetry system would track
  auto flush = [&] {
    BaselineWindowResult w{start, start + kWindow, {}};
    if (sps) {
      for (const FlowKey& key : est->Candidates()) {
        if (est->EstimateSpread(key) >= kSpreadThreshold) {
          w.detected.insert(key);
        }
      }
    } else {
      for (const FlowKey& key : window_keys) {
        if (est->EstimateSpread(key) >= kSpreadThreshold) {
          w.detected.insert(key);
        }
      }
    }
    out.push_back(std::move(w));
    est->Reset();
    window_keys.clear();
    start += kWindow;
  };
  for (const Packet& p : trace.packets) {
    while (p.ts >= start + kWindow) flush();
    if (tw1 && p.ts < start + kCrTime) continue;
    const FlowKey key = p.Key(FlowKeyKind::kSrcIp);
    est->Update(key, def.element(p));
    if (!sps) window_keys.insert(key);
  }
  flush();
  return out;
}

Windows RunSpreadOmniWindow(const Trace& trace, bool sps, bool sliding) {
  auto app = std::make_shared<SpreadSketchApp>(
      sps ? "sps" : "vbf", FlowKeyKind::kSrcIp,
      [&] { return MakeSpreadEstimator(sps, kWindowBytes / 4); },
      /*tracks_own_keys=*/sps);
  EvalParams params;
  const WindowSpec spec = sliding ? SlidingSpec(params) : TumblingSpec(params);
  const RunResult result = RunOmniWindow(
      trace, app, RunConfig::Make(spec), [&](TableView table) {
        FlowSet set;
        table.ForEach([&](const KvSlot& slot) {
          const SpreadSignature sig{slot.attrs[0], slot.attrs[1],
                                    slot.attrs[2], slot.attrs[3]};
          if (app->EstimateMerged(sig) >= kSpreadThreshold) {
            set.insert(slot.key);
          }
        });
        return set;
      });
  return OmniToWindows(result);
}

void RunQ8(const Trace& trace) {
  const QueryDef def = SpreadDef();
  const Windows truth = RunIdealSliding(def, trace, kWindow, kSlide);
  auto score = [&](const Windows& got) {
    return WindowedPrecisionRecall(got, truth);
  };
  std::printf("Q8 super-spreaders (threshold %.0f distinct dsts)\n",
              kSpreadThreshold);
  for (const bool sps : {true, false}) {
    std::printf("  %s:\n", sps ? "SpreadSketch" : "VectorBloomFilter");
    PrintPr("ITW", score(RunIdealTumbling(def, trace, kWindow)));
    PrintPr("TW1", score(RunSpreadTumblingBaseline(trace, sps, true)));
    PrintPr("TW2", score(RunSpreadTumblingBaseline(trace, sps, false)));
    PrintPr("OTW", score(RunSpreadOmniWindow(trace, sps, false)));
    PrintPr("ISW", score(truth));
    PrintPr("OSW", score(RunSpreadOmniWindow(trace, sps, true)));
    std::fflush(stdout);
  }
}

// ------------------------------------------------------- Q10: flow volume

QueryDef VolumeDef() {
  QueryDef def;
  def.name = "Q10_flow_volume";
  def.key_kind = FlowKeyKind::kFiveTuple;
  def.aggregate = QueryAggregate::kCount;
  def.threshold = 1;
  return def;
}

/// AARE of per-window flow estimates over flows with >= 10 true packets.
double Aare(const std::map<Nanos, FlowCounts>& est_windows,
            const Trace& trace) {
  IdealQueryEngine ideal(trace);
  double sum = 0;
  std::size_t n = 0;
  for (const auto& [start, est] : est_windows) {
    const FlowCounts truth = ideal.Aggregate(VolumeDef(), start,
                                             start + kWindow);
    for (const auto& [key, v] : truth) {
      if (v < 10) continue;
      auto it = est.find(key);
      const double e = it == est.end() ? 0.0 : double(it->second);
      sum += std::abs(e - double(v)) / double(v);
      ++n;
    }
  }
  return n ? sum / double(n) : 0.0;
}

template <typename SketchT>
std::map<Nanos, FlowCounts> RunVolTumblingBaseline(const Trace& trace,
                                                   bool tw1) {
  auto sketch = SketchT::WithMemory(kWindowBytes, kDepth);
  IdealQueryEngine ideal(trace);
  std::map<Nanos, FlowCounts> out;
  Nanos start = 0;
  auto flush = [&] {
    FlowCounts est;
    for (const auto& [key, v] :
         ideal.Aggregate(VolumeDef(), start, start + kWindow)) {
      est[key] = sketch.Estimate(key);
    }
    out[start] = std::move(est);
    sketch.Reset();
    start += kWindow;
  };
  for (const Packet& p : trace.packets) {
    while (p.ts >= start + kWindow) flush();
    if (tw1 && p.ts < start + kCrTime) continue;
    sketch.Update(p.Key(FlowKeyKind::kFiveTuple), 1);
  }
  flush();
  return out;
}

template <typename SketchT>
std::map<Nanos, FlowCounts> RunVolOmni(const Trace& trace, bool sliding) {
  auto app = std::make_shared<FrequencySketchApp>(
      "vol", FlowKeyKind::kFiveTuple, FrequencyValue::kPackets, [] {
        return std::make_unique<SketchT>(
            SketchT::WithMemory(kWindowBytes / 4, kDepth));
      });
  EvalParams params;
  const WindowSpec spec = sliding ? SlidingSpec(params) : TumblingSpec(params);

  std::map<Nanos, FlowCounts> out;
  Switch sw(0);
  RunConfig cfg = RunConfig::Make(spec);
  auto program = std::make_shared<OmniWindowProgram>(cfg.data_plane, app);
  sw.SetProgram(program);
  OmniWindowController controller(cfg.controller, app->merge_kind());
  controller.AttachSwitch(&sw);
  controller.SetWindowHandler([&](const WindowResult& w) {
    FlowCounts est;
    w.table->ForEach(
        [&](const KvSlot& slot) { est[slot.key] = slot.attrs[0]; });
    out[Nanos(w.span.first) * kSub] = std::move(est);
  });
  for (const Packet& p : trace.packets) sw.EnqueueFromWire(p, p.ts);
  Packet sentinel;
  sentinel.ts = trace.Duration() + kSub;
  sw.EnqueueFromWire(sentinel, sentinel.ts);
  const Nanos horizon = trace.Duration() + 10 * kSecond;
  sw.RunUntilIdle(horizon);
  if (!controller.Flush(horizon)) {
    sw.RunUntilIdle(horizon);
    controller.Flush(horizon);
  }
  return out;
}

template <typename SlidingT>
std::map<Nanos, FlowCounts> RunVolSlidingSketch(const Trace& trace) {
  SlidingT sk(kDepth,
              std::max<std::size_t>(1, kWindowBytes / (kDepth * 8 * 2)),
              kWindow);
  IdealQueryEngine ideal(trace);
  std::map<Nanos, FlowCounts> out;
  Nanos next_emit = kWindow;
  for (const Packet& p : trace.packets) {
    while (p.ts >= next_emit) {
      FlowCounts est;
      for (const auto& [key, v] :
           ideal.Aggregate(VolumeDef(), next_emit - kWindow, next_emit)) {
        est[key] = sk.Estimate(key, next_emit);
      }
      out[next_emit - kWindow] = std::move(est);
      next_emit += kSlide;
    }
    sk.Update(p.Key(FlowKeyKind::kFiveTuple), 1, p.ts);
  }
  return out;
}

void RunQ10(const Trace& trace) {
  std::printf(
      "Q10 per-flow volume (AARE over flows >= 10 pkts; lower=better)\n");
  auto aare = [&](const std::map<Nanos, FlowCounts>& w) {
    return Aare(w, trace);
  };
  std::printf("  Count-Min:\n");
  std::printf("    TW1 %.4f  TW2 %.4f  OTW %.4f\n",
              aare(RunVolTumblingBaseline<CountMinSketch>(trace, true)),
              aare(RunVolTumblingBaseline<CountMinSketch>(trace, false)),
              aare(RunVolOmni<CountMinSketch>(trace, false)));
  std::fflush(stdout);
  std::printf("    SS  %.4f  OSW %.4f   (sliding)\n",
              aare(RunVolSlidingSketch<SlidingCountMin>(trace)),
              aare(RunVolOmni<CountMinSketch>(trace, true)));
  std::fflush(stdout);
  std::printf("  SuMax:\n");
  std::printf("    TW1 %.4f  TW2 %.4f  OTW %.4f\n",
              aare(RunVolTumblingBaseline<SuMaxSketch>(trace, true)),
              aare(RunVolTumblingBaseline<SuMaxSketch>(trace, false)),
              aare(RunVolOmni<SuMaxSketch>(trace, false)));
  std::fflush(stdout);
  std::printf("    SS  %.4f  OSW %.4f   (sliding)\n",
              aare(RunVolSlidingSketch<SlidingSuMax>(trace)),
              aare(RunVolOmni<SuMaxSketch>(trace, true)));
  std::fflush(stdout);
}

// ----------------------------------------------------- Q11: cardinality

double ExactDistinct(const Trace& trace, Nanos start, Nanos end) {
  FlowSet flows;
  for (const Packet& p : trace.packets) {
    if (p.ts < start) continue;
    if (p.ts >= end) break;
    flows.insert(p.Key(FlowKeyKind::kFiveTuple));
  }
  return double(flows.size());
}

/// Run a cardinality app through the full pipeline (state-migration path)
/// and return the per-window estimates keyed by window start time.
template <typename AppT, typename EstimateFn>
std::map<Nanos, double> RunCardOmni(const Trace& trace, bool sliding,
                                    std::shared_ptr<AppT> app,
                                    EstimateFn&& estimate) {
  EvalParams params;
  const WindowSpec spec = sliding ? SlidingSpec(params) : TumblingSpec(params);
  std::map<Nanos, double> out;
  Switch sw(0);
  RunConfig cfg = RunConfig::Make(spec);
  auto program = std::make_shared<OmniWindowProgram>(cfg.data_plane, app);
  sw.SetProgram(program);
  OmniWindowController controller(cfg.controller, app->merge_kind());
  controller.AttachSwitch(&sw);
  controller.SetWindowHandler([&](const WindowResult& w) {
    out[Nanos(w.span.first) * kSub] = estimate(*w.table);
  });
  for (const Packet& p : trace.packets) sw.EnqueueFromWire(p, p.ts);
  Packet sentinel;
  sentinel.ts = trace.Duration() + kSub;
  sw.EnqueueFromWire(sentinel, sentinel.ts);
  const Nanos horizon = trace.Duration() + 10 * kSecond;
  sw.RunUntilIdle(horizon);
  if (!controller.Flush(horizon)) {
    sw.RunUntilIdle(horizon);
    controller.Flush(horizon);
  }
  return out;
}

void RunQ11(const Trace& trace) {
  std::printf("Q11 flow cardinality (avg ARE per window; lower=better)\n");
  constexpr std::size_t kCardBits = 1 << 17;  // LC bitmap bits per window
  constexpr unsigned kHllPrecision = 11;

  auto score = [&](const std::map<Nanos, double>& estimates) {
    double are = 0;
    std::size_t n = 0;
    for (const auto& [start, est] : estimates) {
      const double truth = ExactDistinct(trace, start, start + kWindow);
      if (truth < 100) continue;
      are += RelativeError(est, truth);
      ++n;
    }
    return n ? are / double(n) : 0.0;
  };

  // TW2 reference: one full-memory instance per tumbling window.
  auto tw2_lc = [&] {
    LinearCounting lc(kCardBits);
    std::map<Nanos, double> out;
    Nanos start = 0;
    for (const Packet& p : trace.packets) {
      while (p.ts >= start + kWindow) {
        out[start] = lc.Estimate();
        lc.Reset();
        start += kWindow;
      }
      lc.Add(p.Key(FlowKeyKind::kFiveTuple).Hash(0xCA4D1417ull));
    }
    out[start] = lc.Estimate();
    return out;
  };
  auto tw2_hll = [&] {
    HyperLogLog hll(kHllPrecision);
    std::map<Nanos, double> out;
    Nanos start = 0;
    for (const Packet& p : trace.packets) {
      while (p.ts >= start + kWindow) {
        out[start] = hll.Estimate();
        hll.Reset();
        start += kWindow;
      }
      hll.Add(p.Key(FlowKeyKind::kFiveTuple).Hash(0xCA4D1417ull));
    }
    out[start] = hll.Estimate();
    return out;
  };

  // OmniWindow: the real §8 state-migration pipeline — per-sub-window
  // quarter-size state shipped by recirculating migration packets, merged
  // by OR (LC) / register max (HLL) in the controller.
  {
    auto lc_est = [](TableView t) {
      return LinearCountingApp::EstimateFromTable(t, kCardBits / 4);
    };
    const auto otw = RunCardOmni(
        trace, false, std::make_shared<LinearCountingApp>(kCardBits / 4),
        lc_est);
    const auto osw = RunCardOmni(
        trace, true, std::make_shared<LinearCountingApp>(kCardBits / 4),
        lc_est);
    std::printf("  LinearCounting: TW2 %.4f  OTW %.4f  OSW %.4f\n",
                score(tw2_lc()), score(otw), score(osw));
    std::fflush(stdout);
  }
  {
    auto hll_est = [](TableView t) {
      return HyperLogLogApp::EstimateFromTable(t, kHllPrecision - 2);
    };
    const auto otw = RunCardOmni(
        trace, false, std::make_shared<HyperLogLogApp>(kHllPrecision - 2),
        hll_est);
    const auto osw = RunCardOmni(
        trace, true, std::make_shared<HyperLogLogApp>(kHllPrecision - 2),
        hll_est);
    std::printf("  HyperLogLog: TW2 %.4f  OTW %.4f  OSW %.4f\n",
                score(tw2_hll()), score(otw), score(osw));
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  const Trace trace = MakeEvalTrace(/*seed=*/2002);
  std::printf("Exp#2: sketch-based algorithms (trace: %zu packets)\n\n",
              trace.packets.size());
  RunQ8(trace);
  RunQ9(trace);
  RunQ10(trace);
  RunQ11(trace);
  return 0;
}
