// Exp#10 (Figure 15): accuracy under different window sizes.
//
// Heavy-hitter detection (Q8 in the paper's numbering of this experiment)
// with MV-Sketch while the user-requested window grows from 0.5 s to 2 s.
// TW1/TW2 and Sliding Sketch were provisioned for the original 0.5 s window
// and keep that fixed memory; OmniWindow keeps measuring in 100 ms
// sub-windows with fixed per-sub-window memory, so its accuracy does not
// depend on the requested window size. Expected shape: OTW/OSW flat near
// the ideal; TW recall and SS precision/recall degrade as windows grow.
#include <cstdio>
#include <memory>

#include "bench/harness.h"
#include "src/sketch/mv_sketch.h"
#include "src/sketch/sliding_sketch.h"

namespace {

using namespace ow;
using namespace ow::bench;

constexpr Nanos kSub = 100 * kMilli;
constexpr std::size_t kProvisionedBytes = 64 << 10;  // sized for 0.5 s
constexpr std::size_t kDepth = 4;
// Fixed absolute threshold (as in the paper): larger windows hold more
// heavy flows, stressing the fixed provisioning of the baselines.
std::uint64_t Threshold(Nanos window) {
  (void)window;
  return 400;
}

QueryDef HhDef(Nanos window) {
  QueryDef def;
  def.name = "heavy_hitter";
  def.key_kind = FlowKeyKind::kFiveTuple;
  def.aggregate = QueryAggregate::kCount;
  def.threshold = Threshold(window);
  return def;
}

using Windows = std::vector<BaselineWindowResult>;

Windows RunTw(const Trace& trace, Nanos window, bool tw1) {
  // Provisioned for a 0.5 s window regardless of the actual size.
  auto sketch = MvSketch::WithMemory(kProvisionedBytes, kDepth);
  const std::uint64_t threshold = Threshold(window);
  Windows out;
  Nanos start = 0;
  auto flush = [&] {
    BaselineWindowResult w{start, start + window, {}};
    for (const FlowKey& key : sketch.Candidates()) {
      if (sketch.Estimate(key) >= threshold) w.detected.insert(key);
    }
    out.push_back(std::move(w));
    sketch.Reset();
    start += window;
  };
  for (const Packet& p : trace.packets) {
    while (p.ts >= start + window) flush();
    if (tw1 && p.ts < start + 60 * kMilli) continue;
    sketch.Update(p.Key(FlowKeyKind::kFiveTuple), 1);
  }
  flush();
  return out;
}

Windows RunOmni(const Trace& trace, Nanos window, bool sliding) {
  auto app = std::make_shared<FrequencySketchApp>(
      "mv", FlowKeyKind::kFiveTuple, FrequencyValue::kPackets, [] {
        // Fixed per-sub-window memory: 1/4 of the 0.5 s provision, never
        // re-sized for larger windows.
        return std::make_unique<MvSketch>(
            MvSketch::WithMemory(kProvisionedBytes / 4, kDepth));
      });
  const std::uint64_t threshold = Threshold(window);
  WindowSpec spec;
  spec.type = sliding ? WindowType::kSliding : WindowType::kTumbling;
  spec.window_size = window;
  spec.slide = sliding ? 100 * kMilli : window;
  spec.subwindow_size = kSub;
  const RunResult result = RunOmniWindow(
      trace, app, RunConfig::Make(spec), [&](TableView table) {
        FlowSet set;
        table.ForEach([&](const KvSlot& slot) {
          if (slot.attrs[0] >= threshold) set.insert(slot.key);
        });
        return set;
      });
  return ToBaselineResults(result, kSub);
}

Windows RunSs(const Trace& trace, Nanos window) {
  // Provisioned for 0.5 s: half width for the two zones.
  SlidingMvSketch mv(
      kDepth, std::max<std::size_t>(1, kProvisionedBytes / (kDepth * 64)),
      window);
  const std::uint64_t threshold = Threshold(window);
  Windows out;
  Nanos next_emit = window;
  for (const Packet& p : trace.packets) {
    while (p.ts >= next_emit) {
      BaselineWindowResult w{next_emit - window, next_emit, {}};
      for (const FlowKey& key : mv.Candidates()) {
        if (mv.Estimate(key, next_emit) >= threshold) w.detected.insert(key);
      }
      out.push_back(std::move(w));
      next_emit += 100 * kMilli;
    }
    mv.Update(p.Key(FlowKeyKind::kFiveTuple), 1, p.ts);
  }
  return out;
}

}  // namespace

int main() {
  const Trace trace = MakeEvalTrace(/*seed=*/1010, /*duration=*/4 * kSecond,
                                    /*pps=*/60'000, /*flows=*/8'000);
  std::printf("Exp#10: accuracy vs window size (MV-Sketch heavy hitters, "
              "%zu packets)\n\n",
              trace.packets.size());
  std::printf("%8s %6s  %9s %9s\n", "window", "mech", "precision", "recall");

  for (const Nanos window :
       {500 * kMilli, 1'000 * kMilli, 1'500 * kMilli, 2'000 * kMilli}) {
    const QueryDef def = HhDef(window);
    const Windows truth = RunIdealSliding(def, trace, window, 100 * kMilli);
    auto pr = [&](const Windows& got) {
      return WindowedPrecisionRecall(got, truth);
    };
    auto show = [&](const char* mech, const PrecisionRecall& r) {
      std::printf("%6lld ms %6s  %9.3f %9.3f\n",
                  (long long)(window / kMilli), mech, r.precision, r.recall);
    };
    show("ITW", pr(RunIdealTumbling(def, trace, window)));
    show("TW1", pr(RunTw(trace, window, true)));
    show("TW2", pr(RunTw(trace, window, false)));
    show("OTW", pr(RunOmni(trace, window, false)));
    show("ISW", pr(truth));
    show("SS", pr(RunSs(trace, window)));
    show("OSW", pr(RunOmni(trace, window, true)));
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
