// Exp#9 (Figure 14): consistency model vs PTP-synchronized local clocks.
//
// Two adjacent switches run LossRadar on the link between them. Under
// OmniWindow's consistency model the first hop embeds the sub-window number
// and the second follows it, so both meters bin every packet identically
// and the IBF difference decodes only real losses. Under PTP local clocks
// with deviation D, boundary packets land in different sub-windows on the
// two switches and decode as phantom losses, collapsing precision as D
// grows (2 us .. 512 us sweep).
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "src/net/network.h"
#include "src/net/ptp.h"
#include "src/telemetry/loss_radar.h"
#include "src/trace/generator.h"

namespace {

using namespace ow;

constexpr Nanos kSubWindow = 50 * kMilli;

class MeterProgram : public SwitchProgram {
 public:
  MeterProgram(bool use_embedded, Nanos clock_skew)
      : use_embedded_(use_embedded), skew_(clock_skew) {}

  void Process(Packet& p, Nanos now, PacketSource, PipelineActions&) override {
    SubWindowNum sw;
    if (use_embedded_) {
      if (!p.ow.present) {  // first hop stamps; later hops follow
        p.ow.present = true;
        p.ow.subwindow_num = SubWindowNum((now + skew_) / kSubWindow);
      }
      sw = p.ow.subwindow_num;
    } else {
      sw = SubWindowNum((now + skew_) / kSubWindow);
    }
    auto [it, ins] = meters_.try_emplace(sw, 8192);
    it->second.Insert({p.Key(FlowKeyKind::kFiveTuple), p.seq});
  }

  std::map<SubWindowNum, LossRadar> meters_;

 private:
  bool use_embedded_;
  Nanos skew_;
};

struct Outcome {
  std::size_t reported = 0;
  std::size_t actual = 0;
  std::size_t true_hits = 0;
  double Precision() const {
    return reported ? double(true_hits) / double(reported) : 1.0;
  }
  double Recall() const {
    return actual ? double(true_hits) / double(actual) : 1.0;
  }
};

Outcome RunScenario(bool consistent, Nanos deviation, std::uint64_t seed) {
  TraceConfig tc;
  tc.seed = seed;
  tc.duration = kSecond;
  tc.packets_per_sec = 50'000;
  tc.num_flows = 5'000;
  TraceGenerator gen(tc);
  Trace trace = gen.GenerateBackground();

  Network net;
  Switch* up = net.AddSwitch();
  Switch* down = net.AddSwitch();
  // Split the deviation across the two local clocks.
  auto prog_up = std::make_shared<MeterProgram>(consistent, -deviation / 2);
  auto prog_down = std::make_shared<MeterProgram>(consistent, deviation / 2);
  up->SetProgram(prog_up);
  down->SetProgram(prog_down);

  // Custom link delivery so we know exactly which packets arrived. Keyed by
  // the canonical FlowKey encoding — NOT the raw FiveTuple bytes, whose
  // padding is indeterminate and would poison the hash.
  std::set<std::pair<std::uint64_t, std::uint32_t>> delivered;
  auto id_of = [](const Packet& p) {
    return std::make_pair(p.Key(FlowKeyKind::kFiveTuple).Hash(0x1D0Full),
                          p.seq);
  };
  Link* link = net.ConnectToSink(
      up, {.latency = 20 * kMicro, .jitter = 10 * kMicro, .loss_rate = 0.001},
      [&](Packet p, Nanos t) {
        delivered.insert(id_of(p));
        down->EnqueueFromWire(std::move(p), t);
      },
      seed * 3 + 1);

  for (const Packet& p : trace.packets) up->EnqueueFromWire(p, p.ts);
  net.RunUntilQuiescent(10 * kSecond);

  Outcome out;
  out.actual = link->dropped();
  for (auto& [sw, meter] : prog_up->meters_) {
    LossRadar diff = meter;
    auto it = prog_down->meters_.find(sw);
    if (it != prog_down->meters_.end()) diff.Subtract(it->second);
    bool clean = false;
    for (const PacketId& id : diff.Decode(clean)) {
      ++out.reported;
      // A decoded id is a real loss only if the packet never reached the
      // downstream switch; otherwise it was binned into a different
      // sub-window there (a phantom). The IBF preserved the canonical
      // FlowKey, so the delivery id recomputes directly from it.
      const bool arrived =
          delivered.contains({id.key.Hash(0x1D0Full), id.seq});
      if (!arrived) ++out.true_hits;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Exp#9: consistency model vs PTP clock deviation "
              "(LossRadar on two switches)\n\n");
  std::printf("%14s %12s %10s %10s %10s %10s\n", "deviation(us)", "mechanism",
              "reported", "actual", "precision", "recall");
  const Outcome ow_out = RunScenario(true, 0, 99);
  std::printf("%14s %12s %10zu %10zu %10.3f %10.3f\n", "-", "OmniWindow",
              ow_out.reported, ow_out.actual, ow_out.Precision(),
              ow_out.Recall());
  for (const Nanos dev : {2 * kMicro, 8 * kMicro, 32 * kMicro, 128 * kMicro,
                          512 * kMicro}) {
    const Outcome o = RunScenario(false, dev, 99);
    std::printf("%14lld %12s %10zu %10zu %10.3f %10.3f\n",
                (long long)(dev / kMicro), "PTP-local", o.reported, o.actual,
                o.Precision(), o.Recall());
  }
  std::printf("\n(OmniWindow stays at precision 1.0; local clocks degrade "
              "as deviation grows and boundary packets split.)\n");

  // Where do such deviations come from? Residual offsets of a modelled PTP
  // loop under increasing queueing load (§2 C2: "hundreds of nanoseconds
  // to hundreds of microseconds").
  std::printf("\nPTP residual-offset model (mean |offset| between syncs):\n");
  for (const Nanos jitter :
       {1 * kMicro, 10 * kMicro, 50 * kMicro, 200 * kMicro}) {
    PtpConfig cfg;
    cfg.queue_jitter = jitter;
    cfg.load_asymmetry = 0.7;
    PtpSync ptp(cfg, 7);
    const auto residuals = ptp.ResidualOffsets(2'000);
    double sum = 0;
    for (const Nanos r : residuals) sum += double(r);
    std::printf("  queue jitter %4lld us -> mean residual %8.1f us\n",
                (long long)(jitter / kMicro),
                sum / double(residuals.size()) / 1e3);
  }
  return 0;
}
