// Exp#6 (Figure 11): time of AFR generation and collection.
//
// One sub-window holding 64 K flowkeys over a Count-Min instance
// (1–4 hash functions, 128 KB per array) is collected with seven methods:
//
//   OS    — conventional switch-OS register read (seconds),
//   CPC   — control-plane collection: inject all 64 K keys,
//   DPC   — data-plane collection: enumerate all keys by recirculation,
//   OW    — hybrid: 32 K keys cached in the data plane, 32 K injected,
//   CPC* / DPC* / OW* — the same with the RDMA optimization (§7).
//
// The bypass methods run through the real switch/controller machinery in
// simulated time (packet pacing from the DPDK cost model, recirculation
// from the switch timing model); the OS method uses the switch-OS latency
// model. Expected shape: OS is 2–3 orders of magnitude slower; CPC slowest
// of the bypasses; DPC*/OW* fastest.
#include <cstdio>
#include <memory>

#include "src/core/controller.h"
#include "src/core/data_plane.h"
#include "src/core/runner.h"
#include "src/sketch/count_min.h"
#include "src/switchsim/switch_os.h"
#include "src/telemetry/sketch_apps.h"

namespace {

using namespace ow;

constexpr std::size_t kTotalKeys = 64 * 1024;
constexpr std::size_t kArrayBytes = 128 << 10;

/// Drive one collection round and return (simulated) trigger-to-last-AFR
/// time. `cached_keys`: capacity of the data-plane flowkey array; the
/// remaining keys spill to the controller and are injected back.
Nanos MeasureCollection(std::size_t cached_keys, std::size_t rows,
                        bool rdma, bool controller_resolves,
                        std::size_t collection_packets) {
  auto app = std::make_shared<FrequencySketchApp>(
      "cm", FlowKeyKind::kFiveTuple, FrequencyValue::kPackets, [&] {
        return std::make_unique<CountMinSketch>(
            rows, kArrayBytes / 8);  // 128 KB per 8-byte-counter array
      });

  WindowSpec spec;
  spec.type = WindowType::kTumbling;
  spec.window_size = spec.subwindow_size = 100 * kMilli;  // W = 1
  RunConfig cfg = RunConfig::Make(spec);
  cfg.data_plane.tracker.capacity = std::max<std::size_t>(1, cached_keys);
  cfg.data_plane.tracker.bloom_bits = 1 << 21;
  cfg.data_plane.rdma = rdma;
  cfg.controller.rdma = rdma;
  cfg.controller.rdma_controller_resolves_addresses = controller_resolves;
  cfg.controller.collection_packets = collection_packets;
  cfg.controller.kv_capacity = 1 << 18;

  Switch sw(0, cfg.switch_timings);
  auto program = std::make_shared<OmniWindowProgram>(cfg.data_plane, app);
  sw.SetProgram(program);
  OmniWindowController controller(cfg.controller, MergeKind::kFrequency);
  controller.AttachSwitch(&sw);
  RdmaNic nic;
  if (rdma) program->SetRdmaContext(controller.InitRdma(nic));

  // Instrument: trigger arrival and last collection-related arrival.
  Nanos trigger_at = -1, last_afr_at = -1;
  sw.SetControllerHandler([&](const Packet& p, Nanos t) {
    if (p.ow.flag == OwFlag::kTrigger && trigger_at < 0) trigger_at = t;
    if (p.ow.flag == OwFlag::kAfrReport) last_afr_at = t;
    controller.OnPacket(p, t);
  });

  // 64 K distinct flows inside the sub-window.
  for (std::size_t i = 0; i < kTotalKeys; ++i) {
    Packet p;
    p.ft = {std::uint32_t(i + 1), std::uint32_t((i * 7) + 1),
            std::uint16_t(i % 60'000 + 1), 80, 6};
    p.ts = Nanos(i) * (90 * kMilli) / Nanos(kTotalKeys);
    sw.EnqueueFromWire(p, p.ts);
  }
  Packet sentinel;
  sentinel.ts = 150 * kMilli;
  sw.EnqueueFromWire(sentinel, sentinel.ts);
  sw.RunUntilIdle(kSecond * 100);

  if (trigger_at < 0 || last_afr_at < 0) return -1;
  // Exclude the controller's grace period (fixed wait, not collection
  // work).
  return last_afr_at - trigger_at - cfg.controller.grace_period;
}

}  // namespace

int main() {
  std::printf("Exp#6: AFR generation + collection time, Count-Min with 64 K "
              "flowkeys, 128 KB per array\n\n");
  std::printf("%6s %12s %12s %12s %12s %12s %12s %12s\n", "hashes", "OS",
              "CPC", "DPC", "OW", "CPC*", "DPC*", "OW*");

  SwitchOsTimings os_t;
  os_t.per_entry_read = 72 * kMicro;  // calibrated to the paper's OS reads
  SwitchOsDriver os(os_t);

  for (std::size_t rows = 1; rows <= 4; ++rows) {
    // OS: sequential register reads of `rows` arrays of 16 K entries
    // (128 KB / 8 B counters), per the switch-OS latency model.
    const Nanos os_time = Nanos(rows) * os.ReadCost(kArrayBytes / 8 * 2);

    const Nanos cpc = MeasureCollection(1, rows, false, false, 3);
    const Nanos dpc = MeasureCollection(kTotalKeys, rows, false, false, 3);
    const Nanos ow = MeasureCollection(kTotalKeys / 2, rows, false, false, 3);
    const Nanos cpc_r = MeasureCollection(1, rows, true, true, 16);
    const Nanos dpc_r = MeasureCollection(kTotalKeys, rows, true, false, 16);
    const Nanos ow_r =
        MeasureCollection(kTotalKeys / 2, rows, true, false, 16);

    auto ms = [](Nanos t) { return double(t) / 1e6; };
    std::printf("%6zu %9.1f ms %9.2f ms %9.2f ms %9.2f ms %9.2f ms %9.2f ms "
                "%9.2f ms\n",
                rows, ms(os_time), ms(cpc), ms(dpc), ms(ow), ms(cpc_r),
                ms(dpc_r), ms(ow_r));
    std::fflush(stdout);
  }
  std::printf("\n(OS uses the switch-OS PCIe/RPC latency model; the others "
              "run the full collection machinery in simulated time.)\n");
  return 0;
}
