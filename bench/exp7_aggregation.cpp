// Exp#7 (Figure 12): time of AFR aggregation — sum and max reductions,
// scalar vs SIMD (vectorized) merge kernels.
//
// These are REAL CPU measurements (google-benchmark) of the controller's
// batch merge path. The paper reports 502 us (sum) / 728 us (max) scalar
// over 1 M flows, reduced 75–81% with AVX-512. Two batch sizes are swept:
// 64 K flows (cache-resident — compute-bound, where vectorization shines)
// and 1 M flows (streaming — partially memory-bandwidth-bound, so the SIMD
// advantage narrows; the paper's testbed had more memory bandwidth per
// core). The shape to reproduce: both reductions finish orders of magnitude
// below a 100 ms sub-window, and the vectorized kernel wins.
// A third subject extends the figure: the full sharded merge pipeline
// (partition + insert + fold) swept over 1/2/4/8 merge threads. Items/s is
// AFR records merged per second; on a host with enough cores the wall-time
// speedup tracks the thread count (see bench/perf_merge.cpp for the JSON
// trajectory emitter and the core-starved-host caveat).
#include <benchmark/benchmark.h>

#include <vector>

#include "src/common/hash.h"
#include "src/controller/merge.h"
#include "src/controller/merge_engine.h"
#include "src/controller/sharded_key_value_table.h"

namespace {

using namespace ow;

std::vector<std::uint64_t> MakeValues(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> v(n);
  std::uint64_t s = seed;
  for (auto& x : v) {
    s = Mix64(s + 1);
    x = s % 10'000;
  }
  return v;
}

template <typename Kernel>
void RunKernel(benchmark::State& state, Kernel&& kernel, std::uint64_t seed) {
  const std::size_t n = std::size_t(state.range(0));
  auto acc = MakeValues(n, seed);
  const auto vals = MakeValues(n, seed + 1);
  for (auto _ : state) {
    kernel(std::span<std::uint64_t>(acc),
           std::span<const std::uint64_t>(vals));
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(n));
}

void BM_SumScalar(benchmark::State& state) {
  RunKernel(state, BatchSumScalar, 1);
}
void BM_SumSimd(benchmark::State& state) { RunKernel(state, BatchSumSimd, 1); }
void BM_MaxScalar(benchmark::State& state) {
  RunKernel(state, BatchMaxScalar, 3);
}
void BM_MaxSimd(benchmark::State& state) { RunKernel(state, BatchMaxSimd, 3); }

// Thread sweep of the sharded controller merge (batch = one sub-window's
// AFR flood, 64 K records over 48 K keys — enough duplication to exercise
// both the insert and the fold path).
void BM_ShardedMerge(benchmark::State& state) {
  const std::size_t threads = std::size_t(state.range(0));
  constexpr std::size_t kRecords = 64 * 1024;
  constexpr std::size_t kKeys = 48 * 1024;
  std::vector<FlowRecord> batch;
  batch.reserve(kRecords);
  std::uint64_t s = 7;
  for (std::size_t i = 0; i < kRecords; ++i) {
    s = Mix64(s + 1);
    FlowRecord rec;
    rec.key = FlowKey(FlowKeyKind::kFiveTuple,
                      FiveTuple{std::uint32_t(s % kKeys), 2, 3, 4, 17});
    rec.attrs[0] = s % 1000;
    rec.attrs[1] = s % 1500;
    rec.num_attrs = 2;
    rec.seq_id = std::uint32_t(i);
    batch.push_back(rec);
  }
  MergeEngine engine(threads);
  for (auto _ : state) {
    state.PauseTiming();
    ShardedKeyValueTable table(1 << 17, threads);
    state.ResumeTiming();
    engine.MergeBatch(MergeKind::kFrequency, batch, table);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(kRecords));
}

constexpr std::int64_t kCacheResident = 64 * 1024;
constexpr std::int64_t kPaperScale = 1'000'000;

BENCHMARK(BM_SumScalar)
    ->Arg(kCacheResident)
    ->Arg(kPaperScale)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SumSimd)
    ->Arg(kCacheResident)
    ->Arg(kPaperScale)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MaxScalar)
    ->Arg(kCacheResident)
    ->Arg(kPaperScale)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MaxSimd)
    ->Arg(kCacheResident)
    ->Arg(kPaperScale)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ShardedMerge)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
