// Controller merge throughput: thread sweep over the sharded merge engine.
//
// Reconstructs the per-sub-window AFR batches a controller would collect
// from the standard evaluation trace (one frequency record per flow per
// sub-window) and replays them through MergeEngine at 1/2/4/8 threads,
// reporting records/s and the speedup over single-threaded. Results go to
// BENCH_merge.json (override with argv[1]) as the start of the merge-path
// perf trajectory.
//
// Two timings are recorded per thread count:
//  * wall:          elapsed time of the MergeBatch calls, as observed on
//                   this host. Only meaningful as a speedup when the host
//                   has a free core per merge thread.
//  * critical_path: serial partition cost + max over workers of per-thread
//                   CPU time — what the wall clock shows with enough cores.
//                   On a core-starved host (CI containers are often 1-2
//                   vCPU) this is the honest scaling signal; host_cpus is
//                   recorded so readers can tell which regime applied.
// The sweep also cross-checks that every thread count produced bit-identical
// merged contents (the engine's core invariant).
#include <chrono>
#include <thread>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/harness.h"
#include "src/common/alloc_trace.h"
#include "src/controller/merge_engine.h"
#include "src/controller/sharded_key_value_table.h"

namespace {

using namespace ow;
using namespace ow::bench;

using Batches = std::vector<std::vector<FlowRecord>>;

/// Per-sub-window frequency AFRs (count + bytes) for every flow of the
/// trace — the batch shape OnPacket hands to FinalizeSubWindow.
Batches MakeAfrBatches(const Trace& trace, Nanos subwindow_size) {
  std::map<SubWindowNum, std::unordered_map<FlowKey, FlowRecord, FlowKeyHasher>>
      per_sw;
  for (const Packet& p : trace.packets) {
    const SubWindowNum sw = SubWindowNum(p.ts / subwindow_size);
    FlowRecord& rec = per_sw[sw][p.Key(FlowKeyKind::kFiveTuple)];
    rec.key = p.Key(FlowKeyKind::kFiveTuple);
    rec.attrs[0] += 1;
    rec.attrs[1] += p.size_bytes;
    rec.num_attrs = 2;
    rec.subwindow = sw;
  }
  Batches batches;
  for (auto& [sw, flows] : per_sw) {
    std::vector<FlowRecord> batch;
    batch.reserve(flows.size());
    std::uint32_t seq = 0;
    for (auto& [key, rec] : flows) {
      rec.seq_id = seq++;
      batch.push_back(rec);
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

std::map<FlowKey, std::array<std::uint64_t, 4>> Dump(
    const ShardedKeyValueTable& table) {
  std::map<FlowKey, std::array<std::uint64_t, 4>> out;
  table.ForEach([&](const KvSlot& slot) { out[slot.key] = slot.attrs; });
  return out;
}

struct SweepPoint {
  std::size_t threads = 0;
  double wall_ns_per_record = 0;
  double critical_path_ns_per_record = 0;
  double wall_records_per_sec = 0;
  /// Heap allocations inside the timed MergeBatch calls per record
  /// (OW_ALLOC_TRACE builds only; -1 = no tracing). Steady-state target: 0.
  double allocs_per_record = -1;
};

SweepPoint RunSweepPoint(const Batches& batches, std::size_t threads,
                         std::size_t total_records, int rounds,
                         std::map<FlowKey, std::array<std::uint64_t, 4>>*
                             dump_out) {
  MergeEngine engine(threads);
  SweepPoint point;
  point.threads = threads;
  double wall_ns = 0;
  double critical_ns = 0;
  std::uint64_t allocs = 0;
  for (int round = -1; round < rounds; ++round) {  // round -1 warms up
    ShardedKeyValueTable table(1 << 17, threads);
    for (const auto& batch : batches) {
      const alloc_trace::Scope trace_scope;
      const auto t0 = std::chrono::steady_clock::now();
      const MergeEngine::BatchTiming bt =
          engine.MergeBatch(MergeKind::kFrequency, batch, table);
      const auto t1 = std::chrono::steady_clock::now();
      if (round >= 0) {
        wall_ns += double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              t1 - t0)
                              .count());
        critical_ns += double(bt.Total());
        allocs += trace_scope.news();
      }
    }
    if (round == rounds - 1 && dump_out) *dump_out = Dump(table);
  }
  const double n = double(total_records) * rounds;
  point.wall_ns_per_record = wall_ns / n;
  point.critical_path_ns_per_record = critical_ns / n;
  point.wall_records_per_sec = 1e9 / point.wall_ns_per_record;
  if (alloc_trace::Enabled()) point.allocs_per_record = double(allocs) / n;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_merge.json";
  const EvalParams params;
  const Trace trace = MakeEvalTrace(/*seed=*/4004);
  const Batches batches = MakeAfrBatches(trace, params.subwindow_size);
  std::size_t total_records = 0;
  for (const auto& b : batches) total_records += b.size();
  std::printf(
      "perf_merge: %zu packets -> %zu AFRs across %zu sub-windows\n",
      trace.packets.size(), total_records, batches.size());

  constexpr int kRounds = 20;
  std::vector<SweepPoint> points;
  std::map<FlowKey, std::array<std::uint64_t, 4>> reference, dump;
  bool identical = true;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    dump.clear();
    points.push_back(
        RunSweepPoint(batches, threads, total_records, kRounds, &dump));
    if (threads == 1) {
      reference = dump;
    } else if (dump != reference) {
      identical = false;
    }
    const SweepPoint& p = points.back();
    std::printf(
        "  threads=%zu  wall %7.1f ns/rec (%6.2f Mrec/s)  "
        "critical-path %7.1f ns/rec",
        p.threads, p.wall_ns_per_record, p.wall_records_per_sec / 1e6,
        p.critical_path_ns_per_record);
    if (p.allocs_per_record >= 0) {
      std::printf("  %.4f allocs/rec", p.allocs_per_record);
    }
    std::printf("\n");
  }
  std::printf("  merged contents identical across thread counts: %s\n",
              identical ? "yes" : "NO (BUG)");

  const double base_wall = points[0].wall_ns_per_record;
  const double base_crit = points[0].critical_path_ns_per_record;
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (!f) {
    std::perror("perf_merge: fopen");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"controller_merge_engine\",\n");
  std::fprintf(f,
               "  \"trace\": {\"name\": \"MakeEvalTrace(4004)\", "
               "\"packets\": %zu, \"afrs\": %zu, \"subwindows\": %zu},\n",
               trace.packets.size(), total_records, batches.size());
  std::fprintf(f, "  \"rounds\": %d,\n", kRounds);
  std::fprintf(f, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"contents_identical_across_threads\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        f,
        "    {\"threads\": %zu, \"wall_ns_per_record\": %.1f, "
        "\"wall_records_per_sec\": %.0f, "
        "\"critical_path_ns_per_record\": %.1f, "
        "\"speedup_wall\": %.2f, \"speedup_critical_path\": %.2f",
        p.threads, p.wall_ns_per_record, p.wall_records_per_sec,
        p.critical_path_ns_per_record, base_wall / p.wall_ns_per_record,
        base_crit / p.critical_path_ns_per_record);
    if (p.allocs_per_record >= 0) {
      std::fprintf(f, ", \"allocs_per_record\": %.4f", p.allocs_per_record);
    }
    std::fprintf(f, "}%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote %s\n", json_path.c_str());
  return identical ? 0 : 1;
}
