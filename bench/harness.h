// Shared experiment harness for the bench/ binaries.
//
// Provides the six window mechanisms of the paper's evaluation —
// ITW / ISW (ideal), TW1 / TW2 (conventional tumbling) and OTW / OSW
// (OmniWindow tumbling/sliding) — as uniform runners over a trace, plus
// the evaluation trace builder and precision/recall scoring against the
// ideal sliding window (the ground truth convention of Exp#1/#2/#10).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/core/runner.h"
#include "src/telemetry/baselines.h"
#include "src/telemetry/query.h"
#include "src/telemetry/sketch_apps.h"
#include "src/trace/generator.h"

namespace ow::bench {

/// The window parameters of §9.1: 500 ms windows, 100 ms slide and
/// sub-windows, 1/4 window memory per sub-window.
struct EvalParams {
  Nanos window_size = 500 * kMilli;
  Nanos slide = 100 * kMilli;
  Nanos subwindow_size = 100 * kMilli;
  /// Whole-window state cells for the baselines; OmniWindow sub-windows get
  /// a quarter of this.
  std::size_t window_cells = 1 << 15;
  /// Conventional C&R blackout (switch-OS path) for TW1.
  Nanos cr_time = 60 * kMilli;
};

/// One standard evaluation trace (background + all anomalies + boundary
/// bursts), deterministic in `seed`.
Trace MakeEvalTrace(std::uint64_t seed, Nanos duration = 2 * kSecond,
                    double pps = 60'000, std::size_t flows = 8'000);

enum class Mechanism { kItw, kIsw, kTw1, kTw2, kOtw, kOsw };

const char* MechanismName(Mechanism m);

/// Per-window detections of `def` under mechanism `m`.
std::vector<BaselineWindowResult> RunQueryMechanism(Mechanism m,
                                                    const QueryDef& def,
                                                    const Trace& trace,
                                                    const EvalParams& params);

/// Precision/recall of a mechanism against the ideal sliding window.
PrecisionRecall ScoreQueryMechanism(Mechanism m, const QueryDef& def,
                                    const Trace& trace,
                                    const EvalParams& params);

/// Convert OmniWindow's emitted windows to baseline-result form (time spans
/// derived from sub-window indices).
std::vector<BaselineWindowResult> ToBaselineResults(
    const RunResult& result, Nanos subwindow_size);

/// WindowSpec helpers.
WindowSpec TumblingSpec(const EvalParams& p);
WindowSpec SlidingSpec(const EvalParams& p);

/// `--obs-out=<prefix>` support shared by the bench binaries. When the flag
/// is present, arms span tracing on the global obs registry and returns the
/// prefix; pass it to DumpObs after the run. Returns nullopt (and leaves
/// tracing off) otherwise.
std::optional<std::string> ObsOutFromArgs(int argc, char** argv);

/// Write `<prefix>.stats.json` + `<prefix>.trace.json` from the global obs
/// registry (see docs/observability.md for the schemas). Returns false if
/// either file could not be written.
bool DumpObs(const std::string& prefix);

/// BENCH_*.json emission (schema family shared by perf_merge and
/// perf_pipeline: a "bench" tag, a "trace" descriptor, host_cpus and a
/// "results" array of per-workload rows) --------------------------------

struct BenchThroughputRow {
  std::string workload;
  std::uint64_t items = 0;       ///< items (packets/records) per round
  int rounds = 0;
  double ns_per_item = 0;
  double items_per_sec = 0;
  /// Worker threads used (emitted when >= 0; part of the row identity in
  /// tools/check_bench_regression.py, which keys rows by workload+threads).
  int threads = -1;
  /// Sum-of-worker-busy over max-worker-busy: how much concurrent work the
  /// engine exposed, independent of how many cores the host actually has
  /// (the perf_merge convention for 1-vCPU CI hosts). Emitted when > 0.
  double critical_path_speedup = 0;
  /// Heap allocations (operator new calls) per item inside the timed
  /// region, measured via the OW_ALLOC_TRACE hook. Emitted when >= 0;
  /// negative means the build has no tracing. The steady-state target — and
  /// the regression-gated baseline — is exactly 0.
  double allocs_per_item = -1;
};

/// Write rows as `{"bench": <bench>, "trace": {...<trace_desc>...},
/// "min_time_sec": ..., "host_cpus": ..., "results": [...]}` with the row
/// fields named `ns_per_<item_name>` / `<item_name>s_per_sec`. Returns
/// false if the file could not be written.
bool WriteThroughputJson(const std::string& path, const std::string& bench,
                         const std::string& trace_desc, double min_time_sec,
                         const std::string& item_name,
                         const std::vector<BenchThroughputRow>& rows);

/// `--min-time=<seconds>` flag (perf smoke runs pass a small value);
/// returns `def` when absent or malformed.
double MinTimeFromArgs(int argc, char** argv, double def);

/// `--out=<path>` flag; returns `def` when absent.
std::string OutPathFromArgs(int argc, char** argv, const std::string& def);

}  // namespace ow::bench
