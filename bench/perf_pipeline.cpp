// Simulator performance: packet-processing throughput of the switch model.
//
// Not a paper experiment — this measures THIS repository's data-plane model
// so users can size their runs: packets/second through OmniWindowProgram
// with a Sonata-style count query, a distinct-signature query, an MV-Sketch
// app and FlowRadar. Results go to BENCH_pipeline.json (override with
// --out=<path>) in the same schema family as BENCH_merge.json; --min-time=N
// bounds the measured seconds per workload (CI smoke runs pass a small
// value). Timing covers RunBatch over the preloaded trace only — switch
// construction and enqueueing are excluded, as in the historical
// google-benchmark version.
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/common/alloc_trace.h"
#include "src/core/data_plane.h"
#include "src/sketch/mv_sketch.h"
#include "src/telemetry/flow_radar.h"
#include "src/telemetry/query_builder.h"
#include "src/telemetry/sketch_apps.h"
#include "src/trace/generator.h"

namespace {

using namespace ow;
using namespace ow::bench;

Trace& TestTrace() {
  static Trace trace = [] {
    TraceConfig cfg;
    cfg.seed = 77;
    cfg.duration = 500 * kMilli;
    cfg.packets_per_sec = 100'000;
    cfg.num_flows = 10'000;
    TraceGenerator gen(cfg);
    return gen.GenerateBackground();
  }();
  return trace;
}

/// One timed round: build a fresh switch + program, preload the trace, and
/// measure draining it. Returns elapsed nanoseconds of the drain only;
/// `allocs` (when tracing is compiled in) accumulates heap allocations
/// performed inside the timed region — the steady-state target is 0.
double TimedRound(const std::function<AdapterPtr()>& make_app,
                  std::uint64_t* allocs = nullptr) {
  const Trace& trace = TestTrace();
  OmniWindowConfig cfg;
  cfg.signal.kind = SignalKind::kTimeout;
  cfg.signal.subwindow_size = 100 * kMilli;
  Switch sw(0);
  auto program = std::make_shared<OmniWindowProgram>(cfg, make_app());
  sw.SetProgram(program);
  sw.SetControllerHandler([](const Packet&, Nanos) {});
  for (const Packet& p : trace.packets) sw.EnqueueFromWire(p, p.ts);
  alloc_trace::Scope trace_scope;
  const auto t0 = std::chrono::steady_clock::now();
  sw.RunBatch(trace.Duration() + kSecond);
  const auto t1 = std::chrono::steady_clock::now();
  if (allocs) *allocs += trace_scope.news();
  // Keep the result alive so the drain cannot be optimized away.
  volatile std::uint64_t sink = program->stats().packets_measured;
  (void)sink;
  return double(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

BenchThroughputRow RunWorkload(const std::string& name, double min_time_sec,
                               const std::function<AdapterPtr()>& make_app) {
  TimedRound(make_app);  // warm-up (page-in, allocator steady state)
  double total_ns = 0;
  std::uint64_t allocs = 0;
  int rounds = 0;
  while (total_ns < min_time_sec * 1e9 || rounds < 2) {
    total_ns += TimedRound(make_app, &allocs);
    ++rounds;
  }
  BenchThroughputRow row;
  row.workload = name;
  row.items = TestTrace().packets.size();
  row.rounds = rounds;
  row.ns_per_item = total_ns / (double(rounds) * double(row.items));
  row.items_per_sec = 1e9 / row.ns_per_item;
  if (alloc_trace::Enabled()) {
    row.allocs_per_item = double(allocs) / (double(rounds) * double(row.items));
  }
  std::printf("  %-16s %8.1f ns/packet  %8.2f Mpkt/s  (%d rounds", name.c_str(),
              row.ns_per_item, row.items_per_sec / 1e6, rounds);
  if (alloc_trace::Enabled()) {
    std::printf(", %.4f allocs/packet", row.allocs_per_item);
  }
  std::printf(")\n");
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = OutPathFromArgs(argc, argv, "BENCH_pipeline.json");
  const double min_time = MinTimeFromArgs(argc, argv, 2.0);
  const Trace& trace = TestTrace();
  std::printf("perf_pipeline: %zu packets, min-time %.2fs per workload\n",
              trace.packets.size(), min_time);

  std::vector<BenchThroughputRow> rows;
  rows.push_back(RunWorkload("count_query", min_time, [] {
    const QueryDef def = QueryBuilder("count")
                             .KeyBy(FlowKeyKind::kDstIp)
                             .Count()
                             .Threshold(100)
                             .Build();
    return std::make_shared<QueryAdapter>(def, 1 << 14);
  }));
  rows.push_back(RunWorkload("distinct_query", min_time, [] {
    const QueryDef def = QueryBuilder("distinct")
                             .KeyBy(FlowKeyKind::kDstIp)
                             .Distinct(elements::SrcIp)
                             .Threshold(100)
                             .Build();
    return std::make_shared<QueryAdapter>(def, 1 << 14);
  }));
  rows.push_back(RunWorkload("mv_sketch", min_time, [] {
    return std::make_shared<FrequencySketchApp>(
        "mv", FlowKeyKind::kFiveTuple, FrequencyValue::kPackets,
        [] { return std::make_unique<MvSketch>(4, 4096); });
  }));
  rows.push_back(RunWorkload("flow_radar", min_time, [] {
    return std::make_shared<FlowRadarApp>(3, 8192);
  }));

  char trace_desc[128];
  std::snprintf(trace_desc, sizeof(trace_desc),
                "{\"name\": \"GenerateBackground(77)\", \"packets\": %zu}",
                trace.packets.size());
  if (!WriteThroughputJson(out, "switch_pipeline", trace_desc, min_time,
                           "packet", rows)) {
    std::perror("perf_pipeline: fopen");
    return 1;
  }
  std::printf("  wrote %s\n", out.c_str());
  return 0;
}
