// Simulator performance: packet-processing throughput of the switch model.
//
// Not a paper experiment — this measures THIS repository's data-plane model
// so users can size their runs: packets/second through OmniWindowProgram
// with a Sonata-style count query, a distinct-signature query, an MV-Sketch
// app and FlowRadar, plus the bare pipeline dispatch cost.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/core/data_plane.h"
#include "src/sketch/mv_sketch.h"
#include "src/telemetry/flow_radar.h"
#include "src/telemetry/query_builder.h"
#include "src/telemetry/sketch_apps.h"
#include "src/trace/generator.h"

namespace {

using namespace ow;

Trace& TestTrace() {
  static Trace trace = [] {
    TraceConfig cfg;
    cfg.seed = 77;
    cfg.duration = 500 * kMilli;
    cfg.packets_per_sec = 100'000;
    cfg.num_flows = 10'000;
    TraceGenerator gen(cfg);
    return gen.GenerateBackground();
  }();
  return trace;
}

void DriveTrace(benchmark::State& state, AdapterPtr app) {
  const Trace& trace = TestTrace();
  OmniWindowConfig cfg;
  cfg.signal.kind = SignalKind::kTimeout;
  cfg.signal.subwindow_size = 100 * kMilli;
  for (auto _ : state) {
    state.PauseTiming();
    Switch sw(0);
    auto program = std::make_shared<OmniWindowProgram>(cfg, app);
    sw.SetProgram(program);
    sw.SetControllerHandler([](const Packet&, Nanos) {});
    for (const Packet& p : trace.packets) sw.EnqueueFromWire(p, p.ts);
    state.ResumeTiming();
    sw.RunUntilIdle(trace.Duration() + kSecond);
    benchmark::DoNotOptimize(program->stats().packets_measured);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(trace.packets.size()));
}

void BM_CountQuery(benchmark::State& state) {
  const QueryDef def = QueryBuilder("count")
                           .KeyBy(FlowKeyKind::kDstIp)
                           .Count()
                           .Threshold(100)
                           .Build();
  DriveTrace(state, std::make_shared<QueryAdapter>(def, 1 << 14));
}

void BM_DistinctQuery(benchmark::State& state) {
  const QueryDef def = QueryBuilder("distinct")
                           .KeyBy(FlowKeyKind::kDstIp)
                           .Distinct(elements::SrcIp)
                           .Threshold(100)
                           .Build();
  DriveTrace(state, std::make_shared<QueryAdapter>(def, 1 << 14));
}

void BM_MvSketchApp(benchmark::State& state) {
  DriveTrace(state, std::make_shared<FrequencySketchApp>(
                        "mv", FlowKeyKind::kFiveTuple,
                        FrequencyValue::kPackets, [] {
                          return std::make_unique<MvSketch>(4, 4096);
                        }));
}

void BM_FlowRadarApp(benchmark::State& state) {
  DriveTrace(state, std::make_shared<FlowRadarApp>(3, 8192));
}

BENCHMARK(BM_CountQuery)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DistinctQuery)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MvSketchApp)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlowRadarApp)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
