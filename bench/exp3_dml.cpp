// Exp#3 (Figure 9): case study — monitoring distributed ML training with
// user-defined window signals.
//
// The simulated parameter-server job embeds its iteration number in every
// packet; OmniWindow turns each iteration into a window and the switch
// measures per-worker iteration (gradient transmission) times. Output: per
// iteration, the measured time of each worker vs the workload's ground
// truth, showing the stepwise drop as the compression ratio doubles every
// 16 iterations (2 -> 2048).
#include <cmath>
#include <cstdio>
#include <map>

#include "src/core/runner.h"
#include "src/dml/dml.h"
#include "src/dml/iteration_app.h"

int main() {
  using namespace ow;

  DmlConfig cfg;
  cfg.workers = 3;
  cfg.iterations = 96;
  cfg.gradient_bytes = 8 << 20;
  cfg.compress_double_every = 16;
  DmlWorkload workload(cfg);
  const Trace trace = workload.Generate();
  std::printf("Exp#3: DML case study (%zu packets, %d workers, %zu iters)\n\n",
              trace.packets.size(), cfg.workers, cfg.iterations);

  auto app = std::make_shared<IterationTimeApp>(4096);
  WindowSpec spec;
  spec.type = WindowType::kUserDefined;
  spec.window_size = spec.subwindow_size = 100 * kMilli;  // W = 1
  RunConfig rc = RunConfig::Make(spec);
  rc.data_plane.signal.kind = SignalKind::kUserDefined;
  rc.controller.grace_period = 100 * kMicro;

  Switch sw(0, rc.switch_timings);
  auto program = std::make_shared<OmniWindowProgram>(rc.data_plane, app);
  sw.SetProgram(program);
  OmniWindowController controller(rc.controller, app->merge_kind());
  controller.AttachSwitch(&sw);

  // Windows arrive in iteration order (W = 1, user-defined signal).
  std::vector<std::map<std::uint32_t, Nanos>> measured(cfg.iterations);
  std::size_t window_index = 0;
  controller.SetWindowHandler([&](const WindowResult& w) {
    if (window_index >= measured.size()) return;
    w.table->ForEach([&](const KvSlot& slot) {
      measured[window_index][slot.key.src_ip()] =
          Nanos(slot.attrs[1]) - Nanos(slot.attrs[0]);
    });
    ++window_index;
  });

  for (const Packet& p : trace.packets) sw.EnqueueFromWire(p, p.ts);
  Packet fin;
  fin.iteration = std::uint32_t(cfg.iterations);
  fin.ts = trace.Duration() + kMilli;
  sw.EnqueueFromWire(fin, fin.ts);
  sw.RunUntilIdle(trace.Duration() + 10 * kSecond);
  controller.Flush(trace.Duration() + 10 * kSecond);

  const auto& truth = workload.truth();
  std::printf("%5s %6s", "iter", "ratio");
  for (int w = 0; w < cfg.workers; ++w) {
    std::printf("  w%d-meas(ms) w%d-true(ms)", w, w);
  }
  std::printf("\n");
  double total_err = 0;
  std::size_t n_err = 0;
  for (std::size_t it = 0; it < cfg.iterations; ++it) {
    const bool print = it % 8 == 0 || it == cfg.iterations - 1;
    if (print) std::printf("%5zu %6.0f", it, truth.compression_ratio[it]);
    for (int w = 0; w < cfg.workers; ++w) {
      const std::uint32_t ip = 0x0AC80001u + std::uint32_t(w);
      const auto& m = measured[it];
      auto found = m.find(ip);
      const double meas =
          found == m.end() ? 0.0 : double(found->second) / double(kMilli);
      const double tru =
          double(truth.iteration_times[std::size_t(w)][it]) / double(kMilli);
      if (print) std::printf("  %10.3f %11.3f", meas, tru);
      if (tru > 0 && meas > 0) {
        total_err += std::abs(meas - tru) / tru;
        ++n_err;
      }
    }
    if (print) std::printf("\n");
  }
  std::printf("\nmean relative measurement error: %.2f%% over %zu samples\n",
              n_err ? 100.0 * total_err / double(n_err) : 0.0, n_err);
  std::printf("windows emitted: %zu (one per iteration)\n", window_index);
  return 0;
}
