// Ablation (§6): shared memory regions with vs without the flattened
// SALU-optimized layout.
//
// Two deployments of the same Q1 data plane:
//   naive    — each memory region is its own register array, so every
//              logical state array costs TWO SALUs (one per region);
//   flatten  — regions concatenated into one array with an offset MAT, so
//              one SALU serves both regions (OmniWindow's layout).
// The bench prints both resource ledgers; SRAM is identical, SALU (and the
// hash units tied to them) halve under the flattened layout.
#include <cstdio>

#include "src/core/state_layout.h"
#include "src/switchsim/resources.h"
#include "src/telemetry/query.h"

int main() {
  using namespace ow;

  std::printf("Ablation (§6): region layout vs SALU usage (Q1-class state, "
              "4 signature arrays x 16 K cells x 2 regions)\n\n");
  constexpr std::size_t kArrays = 4;    // distinct-signature words
  constexpr std::size_t kCells = 16'384;

  // Naive: 2 regions x kArrays separate register arrays.
  ResourceLedger naive;
  for (std::size_t region = 0; region < 2; ++region) {
    for (std::size_t a = 0; a < kArrays; ++a) {
      ResourceUsage u;
      u.stages.insert(int(6 + a));
      u.sram_bytes = kCells * 8;
      u.salus = 1;  // dedicated SALU per register array
      u.vliw = 1;
      naive.Charge("region" + std::to_string(region), u);
    }
  }

  // Flattened: kArrays RegionedArrays (each = both regions + offset MAT).
  ResourceLedger flat;
  for (std::size_t a = 0; a < kArrays; ++a) {
    RegionedArray arr("sig" + std::to_string(a), kCells, 8);
    flat.Charge("flattened", arr.Resources(int(6 + a)));
  }
  // The offset MAT itself.
  flat.Charge("offset MAT", {.stages = {5}, .sram_bytes = 16 * 1024,
                             .vliw = 2});

  std::printf("naive two-region layout:\n%s\n", naive.ToTable().c_str());
  std::printf("flattened shared-region layout:\n%s\n",
              flat.ToTable().c_str());

  const auto n = naive.Total();
  const auto f = flat.Total();
  std::printf("SALUs: naive %d -> flattened %d (%.0f%% saved); SRAM equal "
              "(%zu vs %zu bytes of state)\n",
              n.salus, f.salus,
              100.0 * double(n.salus - f.salus) / double(n.salus),
              n.sram_bytes, f.sram_bytes - 16 * 1024);

  // Functional check: both regions behave independently through the single
  // flattened array.
  RegionedArray arr("check", 8, 8);
  arr.register_array().BeginPass();
  arr.ReadModifyWrite(0, 3, [](std::uint64_t v) { return v + 7; });
  arr.register_array().BeginPass();
  arr.ReadModifyWrite(1, 3, [](std::uint64_t v) { return v + 9; });
  std::printf("functional: region0[3]=%llu region1[3]=%llu (independent)\n",
              (unsigned long long)arr.ControlRead(0, 3),
              (unsigned long long)arr.ControlRead(1, 3));
  return 0;
}
