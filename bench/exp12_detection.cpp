// Exp#12: always-on streaming anomaly detection over sliding windows.
//
// The consumer that justifies cheap sliding windows (§3): a DetectionService
// subscribes to every controller's WindowResult stream on a fabric and keeps
// per-entity EWMA/hysteresis health state online — windows are scored as
// they complete, never post-hoc. The trace is GenerateEvaluationTrace (all
// eight anomaly classes plus window-boundary bursts), and the emitted alert
// stream is matched against TraceGenerator::injected() ground truth for
// streaming precision / recall / detection latency.
//
// Part A scores the detector on a line fabric and a leaf-spine fabric.
// Part B re-runs the leaf-spine fabric across merge_threads x engine
// threads and asserts the alert stream is bit-identical to the sequential
// single-merge-thread reference (the PR 1/6 determinism discipline).
//
// Emits BENCH_detect.json (--out=) and exits non-zero if leaf-spine
// precision < 0.9, recall < 0.8, or any determinism cell mismatches —
// the CI detection smoke job runs this binary on a thinned trace (--pps=).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/core/network_runner.h"
#include "src/detect/detect.h"
#include "src/detect/score.h"
#include "src/telemetry/exact_count.h"
#include "src/trace/generator.h"

namespace {

using namespace ow;

constexpr std::uint64_t kSeed = 2027;
constexpr Nanos kDuration = 6 * kSecond;

double PpsFromArgs(int argc, char** argv, double def) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pps=", 0) == 0) return std::stod(arg.substr(6));
  }
  return def;
}

struct LabeledTrace {
  Trace trace;
  std::vector<InjectedAnomaly> labels;
};

LabeledTrace MakeTrace(double pps) {
  TraceConfig tc;
  tc.seed = kSeed;
  tc.duration = kDuration;
  tc.packets_per_sec = pps;
  tc.num_flows = 8'000;
  TraceGenerator gen(tc);
  LabeledTrace out;
  out.trace = gen.GenerateEvaluationTrace();
  out.labels = gen.injected();
  return out;
}

NetworkRunConfig BaseConfig(TopologyConfig topo) {
  // The paper's evaluation window geometry (§9.1): 500 ms sliding windows,
  // 100 ms slide over 100 ms sub-windows.
  WindowSpec spec;
  spec.type = WindowType::kSliding;
  spec.window_size = 500 * kMilli;
  spec.slide = 100 * kMilli;
  spec.subwindow_size = 100 * kMilli;
  NetworkRunConfig cfg;
  cfg.base = RunConfig::Make(spec);
  cfg.base.controller.kv_capacity = 1 << 16;
  cfg.topology = topo;
  cfg.link.latency = 20 * kMicro;
  cfg.link.jitter = 0;
  return cfg;
}

struct RunOutcome {
  std::vector<detect::Alert> alerts;
  detect::EntityDetector::Stats stats;
  std::size_t windows = 0;
  std::size_t switches = 0;
  double wall_ms = 0;
};

RunOutcome RunDetection(const Trace& trace, NetworkRunConfig cfg,
                        const detect::DetectorConfig& dcfg) {
  const std::size_t n = TopologySwitchCount(cfg.topology);
  detect::DetectionService service(dcfg, n);
  cfg.window_observer = service.Observer();
  const auto t0 = std::chrono::steady_clock::now();
  const NetworkRunResult net = RunOmniWindowFabric(
      trace, [](std::size_t) { return std::make_shared<ExactCountApp>(); },
      cfg);
  RunOutcome out;
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  out.alerts = service.Alerts();
  out.stats = service.TotalStats();
  out.switches = n;
  for (const SwitchRun& sw : net.per_switch) out.windows += sw.windows.size();
  return out;
}

struct ResultRow {
  std::string fabric;
  std::size_t switches = 0;
  std::size_t merge_threads = 1;
  std::size_t threads = 0;
  RunOutcome run;
  detect::StreamingScore score;
  bool identical = true;  ///< alert stream == the (mt=1, threads=0) reference
};

void PrintAlert(const char* tag, const detect::Alert& a) {
  std::printf(
      "  %s sw=%d entity=(kind=%u src=%08x dst=%08x) %s->%s score=%.4f "
      "value=%llu span=[%llu,%llu] win=[%lld,%lld]ms done=%lld partial=%d\n",
      tag, a.switch_id, unsigned(a.entity.kind()), a.entity.src_ip(),
      a.entity.dst_ip(), detect::HealthStateName(a.from),
      detect::HealthStateName(a.to), a.score, (unsigned long long)a.value,
      (unsigned long long)a.span.first, (unsigned long long)a.span.last,
      (long long)(a.window_start / kMilli), (long long)(a.window_end / kMilli),
      (long long)a.completed_at, int(a.partial));
}

/// Diagnostic for determinism failures: show the first differing alert.
void PrintFirstDiff(const std::vector<detect::Alert>& ref,
                    const std::vector<detect::Alert>& got) {
  const std::size_t n = std::min(ref.size(), got.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (ref[i] == got[i]) continue;
    std::printf("  first difference at alert %zu:\n", i);
    PrintAlert("ref", ref[i]);
    PrintAlert("got", got[i]);
    return;
  }
  std::printf("  streams diverge in length: ref=%zu got=%zu\n", ref.size(),
              got.size());
}

void PrintRow(const ResultRow& r) {
  std::printf(
      "%15s mt=%zu thr=%zu  windows=%-5zu alerts=%-4zu p=%.3f r=%.3f "
      "(%zu/%zu labels) lat=%.0f/%.0f ms  tracked-peak=%zu  %s\n",
      r.fabric.c_str(), r.merge_threads, r.threads, r.run.windows,
      r.score.actionable_alerts, r.score.pr.precision, r.score.pr.recall,
      r.score.labels_detected, r.score.labels,
      double(r.score.mean_detection_latency) / double(kMilli),
      double(r.score.max_detection_latency) / double(kMilli),
      r.run.stats.tracked_peak,
      r.identical ? "bit-identical" : "DETERMINISM MISMATCH");
}

bool WriteJson(const std::string& path, const LabeledTrace& lt,
               const detect::DetectorConfig& dcfg,
               const std::vector<ResultRow>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"detection\",\n";
  out << "  \"trace\": {\"name\": \"GenerateEvaluationTrace(" << kSeed
      << ")\", \"packets\": " << lt.trace.packets.size()
      << ", \"duration_ms\": " << kDuration / kMilli
      << ", \"labels\": " << lt.labels.size() << "},\n";
  out << "  \"host_cpus\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"detector\": {\"max_entities\": " << dcfg.max_entities
      << ", \"enter_score\": " << dcfg.fsm.enter_score
      << ", \"down_score\": " << dcfg.fsm.down_score
      << ", \"exit_score\": " << dcfg.fsm.exit_score
      << ", \"enter_dwell\": " << dcfg.fsm.enter_dwell
      << ", \"exit_dwell\": " << dcfg.fsm.exit_dwell
      << ", \"ewma_alpha\": " << dcfg.score.alpha
      << ", \"baseline_lag\": " << dcfg.score.baseline_lag
      << ", \"min_baseline\": " << dcfg.score.min_baseline << "},\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& r = rows[i];
    out << "    {\"fabric\": \"" << r.fabric << "\""
        << ", \"switches\": " << r.switches
        << ", \"merge_threads\": " << r.merge_threads
        << ", \"threads\": " << r.threads
        << ", \"windows\": " << r.run.windows
        << ", \"alerts\": " << r.run.alerts.size()
        << ", \"actionable_alerts\": " << r.score.actionable_alerts
        << ", \"matched_alerts\": " << r.score.matched_alerts
        << ", \"labels\": " << r.score.labels
        << ", \"labels_detected\": " << r.score.labels_detected
        << ", \"precision\": " << r.score.pr.precision
        << ", \"recall\": " << r.score.pr.recall
        << ", \"mean_latency_ms\": "
        << double(r.score.mean_detection_latency) / double(kMilli)
        << ", \"max_latency_ms\": "
        << double(r.score.max_detection_latency) / double(kMilli)
        << ", \"tracked_peak\": " << r.run.stats.tracked_peak
        << ", \"tracked_cap\": " << dcfg.max_entities * r.switches
        << ", \"evictions\": " << r.run.stats.evictions
        << ", \"wall_ms\": " << r.run.wall_ms
        << ", \"identical_to_reference\": "
        << (r.identical ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return bool(out);
}

}  // namespace

int main(int argc, char** argv) {
  const double pps = PpsFromArgs(argc, argv, 30'000);
  const std::string out_path =
      bench::OutPathFromArgs(argc, argv, "BENCH_detect.json");
  const LabeledTrace lt = MakeTrace(pps);
  std::printf(
      "Exp#12: streaming detection over sliding windows "
      "(%zu packets, %lld ms, %zu ground-truth labels)\n\n",
      lt.trace.packets.size(), (long long)(kDuration / kMilli),
      lt.labels.size());

  detect::DetectorConfig dcfg;  // defaults documented in docs/detection.md

  TopologyConfig line;
  line.kind = TopologyKind::kLine;
  line.line_switches = 2;
  TopologyConfig leafspine;
  leafspine.kind = TopologyKind::kLeafSpine;
  leafspine.leaves = 4;
  leafspine.spines = 3;

  std::vector<ResultRow> rows;

  std::printf("-- Part A: streaming precision/recall by fabric --\n");
  for (const auto& [name, topo] :
       std::vector<std::pair<std::string, TopologyConfig>>{
           {"line-2", line}, {"leafspine-4x3", leafspine}}) {
    ResultRow row;
    row.fabric = name;
    row.run = RunDetection(lt.trace, BaseConfig(topo), dcfg);
    row.switches = row.run.switches;
    row.score = detect::ScoreAlertStream(row.run.alerts, lt.labels);
    PrintRow(row);
    rows.push_back(std::move(row));
  }

  std::printf(
      "\n-- Part B: leaf-spine determinism matrix "
      "(merge_threads x engine threads, vs mt=1/thr=0 reference) --\n");
  // Copy, not reference: the loop below push_backs into `rows`, and a
  // reallocation would leave a reference into the old buffer dangling.
  const std::vector<detect::Alert> reference = rows.back().run.alerts;
  bool all_identical = true;
  for (const auto& [mt, threads] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 0}, {1, 4}, {4, 4}}) {
    NetworkRunConfig cfg = BaseConfig(leafspine);
    cfg.base.controller.merge_threads = mt;
    cfg.parallel.threads = threads;
    ResultRow row;
    row.fabric = "leafspine-4x3";
    row.merge_threads = mt;
    row.threads = threads;
    row.run = RunDetection(lt.trace, cfg, dcfg);
    row.switches = row.run.switches;
    row.score = detect::ScoreAlertStream(row.run.alerts, lt.labels);
    row.identical = row.run.alerts == reference;
    all_identical = all_identical && row.identical;
    PrintRow(row);
    if (!row.identical) PrintFirstDiff(reference, row.run.alerts);
    rows.push_back(std::move(row));
  }

  if (WriteJson(out_path, lt, dcfg, rows)) {
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::printf("\nFAILED to write %s\n", out_path.c_str());
    return 2;
  }

  // Acceptance floors (the leaf-spine quality row + the determinism matrix).
  const ResultRow& headline = rows[1];
  bool ok = all_identical;
  if (headline.score.pr.precision < 0.9) {
    std::printf("FAIL: leaf-spine precision %.3f < 0.9\n",
                headline.score.pr.precision);
    ok = false;
  }
  if (headline.score.pr.recall < 0.8) {
    std::printf("FAIL: leaf-spine recall %.3f < 0.8\n",
                headline.score.pr.recall);
    ok = false;
  }
  if (!all_identical) std::printf("FAIL: alert streams not bit-identical\n");
  return ok ? 0 : 1;
}
