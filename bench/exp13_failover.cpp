// Exp#13: standby-controller failover — windows lost and takeover latency
// vs snapshot cadence.
//
// A StandbyController ingests controller-plane checkpoints every N
// sub-window boundaries while a leaf-spine fabric runs sliding windows
// (500 ms window / 50 ms sub-windows / 50 ms slide — 10 sub-windows per
// window, wider than the switch retransmission cache of depth 8). The
// primary controller plane is killed at a fixed boundary; the standby
// takes over (FabricSession::FailOver) and re-requests everything its
// checkpoint predates. Swept over snapshot cadence x merge_threads x
// fabric engine threads against a per-engine uninterrupted reference.
//
// The headline curve: windows_lost (reference windows NOT recovered
// exactly — flagged or absent; absent is always 0 by the exact-or-flagged
// contract) stays at zero while the checkpoint staleness fits the cache
// and climbs once it does not. takeover latency is reported both in
// deterministic simulated time (sim_ns_per_takeover, gated by
// tools/check_bench_regression.py via the committed baseline in
// bench/results/) and wall time (takeover_wall_us, informational).
//
// Exits non-zero if any window is lost or silently divergent anywhere, if
// any cell fails to catch up, or if windows_lost != 0 at cadence 1 — the
// CI failover-smoke job runs this binary on a thinned trace (--pps=).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/core/network_runner.h"
#include "src/failover/failover.h"
#include "src/telemetry/exact_count.h"
#include "src/trace/generator.h"

namespace {

using namespace ow;

constexpr std::uint64_t kSeed = 1309;
constexpr Nanos kDuration = 1'800 * kMilli;
/// Boundary 32 of the 50 ms sub-window stream (t = 1.6 s): late enough
/// that cadence-16 checkpoints land at boundary 16 (staleness 16, twice
/// the cache depth), early enough that the takeover catches up in-band.
constexpr std::int64_t kKillBoundary = 32;

double PpsFromArgs(int argc, char** argv, double def) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--pps=", 0) == 0) return std::stod(arg.substr(6));
  }
  return def;
}

Trace MakeTrace(double pps) {
  TraceConfig tc;
  tc.seed = kSeed;
  tc.duration = kDuration;
  tc.packets_per_sec = pps;
  tc.num_flows = 2'000;
  TraceGenerator gen(tc);
  return gen.GenerateBackground();
}

NetworkRunConfig BaseConfig(std::size_t merge, std::size_t threads) {
  WindowSpec spec;
  spec.type = WindowType::kSliding;
  spec.window_size = 500 * kMilli;
  spec.subwindow_size = 50 * kMilli;
  spec.slide = 50 * kMilli;
  NetworkRunConfig cfg;
  cfg.base = RunConfig::Make(spec);
  cfg.base.controller.kv_capacity = 1 << 16;
  cfg.base.controller.merge_threads = merge;
  cfg.topology.kind = TopologyKind::kLeafSpine;
  cfg.topology.leaves = 2;
  cfg.topology.spines = 2;
  cfg.capture_counts = true;
  cfg.link.latency = 20 * kMicro;
  cfg.link.jitter = 2 * kMicro;
  cfg.parallel.threads = threads;
  return cfg;
}

AdapterPtr MakeApp(std::size_t) { return std::make_shared<ExactCountApp>(); }

struct ResultRow {
  std::size_t cadence = 1;
  std::size_t merge_threads = 1;
  std::size_t threads = 0;
  failover::FailoverReport report;
  failover::WindowComparison cmp;
  /// Reference windows not recovered exactly (flagged or absent).
  std::size_t windows_lost = 0;
};

void PrintRow(const ResultRow& r) {
  std::printf(
      "cadence=%-2zu mt=%zu thr=%zu  kill@%zu stale=%-2zu snap=%6zuB  "
      "windows=%-3zu exact=%-3zu flagged=%-2zu lost=%zu  requeried=%zu "
      "sw-lost=%zu dup=%zu  takeover sim=%.1fms wall=%.0fus  %s\n",
      r.cadence, r.merge_threads, r.threads, r.report.kill_boundary,
      r.report.staleness_boundaries, r.report.snapshot_bytes,
      r.cmp.windows_total, r.cmp.exact, r.cmp.flagged, r.windows_lost,
      r.report.subwindows_requeried, r.report.subwindows_lost,
      r.report.windows_duplicated,
      double(r.report.takeover_sim_ns) / double(kMilli),
      double(r.report.takeover_wall_ns) / 1e3,
      r.cmp.divergent_unflagged || r.cmp.lost ? "CONTRACT VIOLATION" : "ok");
}

bool WriteJson(const std::string& path, const Trace& trace,
               const std::vector<ResultRow>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"failover\",\n";
  out << "  \"trace\": {\"name\": \"GenerateBackground(" << kSeed
      << ")\", \"packets\": " << trace.packets.size()
      << ", \"duration_ms\": " << kDuration / kMilli << "},\n";
  out << "  \"host_cpus\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"kill_boundary\": " << kKillBoundary << ",\n";
  out << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& r = rows[i];
    out << "    {\"workload\": \"failover-c" << r.cadence << "-mt"
        << r.merge_threads << "\""
        << ", \"threads\": " << r.threads
        << ", \"cadence\": " << r.cadence
        << ", \"merge_threads\": " << r.merge_threads
        << ", \"staleness_boundaries\": " << r.report.staleness_boundaries
        << ", \"snapshot_bytes\": " << r.report.snapshot_bytes
        << ", \"windows_total\": " << r.cmp.windows_total
        << ", \"windows_exact\": " << r.cmp.exact
        << ", \"windows_flagged\": " << r.cmp.flagged
        << ", \"windows_absent\": " << r.cmp.lost
        << ", \"windows_lost\": " << r.windows_lost
        << ", \"divergent_unflagged\": " << r.cmp.divergent_unflagged
        << ", \"subwindows_requeried\": " << r.report.subwindows_requeried
        << ", \"subwindows_lost\": " << r.report.subwindows_lost
        << ", \"windows_duplicated\": " << r.report.windows_duplicated
        << ", \"caught_up\": " << (r.report.caught_up ? "true" : "false")
        << ", \"sim_ns_per_takeover\": " << r.report.takeover_sim_ns
        << ", \"takeover_wall_us\": "
        << double(r.report.takeover_wall_ns) / 1e3 << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return bool(out);
}

}  // namespace

int main(int argc, char** argv) {
  const double pps = PpsFromArgs(argc, argv, 20'000);
  const std::string out_path =
      bench::OutPathFromArgs(argc, argv, "BENCH_failover.json");
  const Trace trace = MakeTrace(pps);
  std::printf(
      "Exp#13: standby failover — windows lost / takeover latency vs "
      "snapshot cadence (%zu packets, %lld ms, kill at boundary %lld)\n\n",
      trace.packets.size(), (long long)(kDuration / kMilli),
      (long long)kKillBoundary);

  std::vector<ResultRow> rows;
  bool ok = true;
  for (const std::size_t merge : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
      const NetworkRunConfig cfg = BaseConfig(merge, threads);
      const NetworkRunResult ref = RunOmniWindowFabric(trace, MakeApp, cfg);
      for (const std::size_t cadence :
           {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8},
            std::size_t{16}}) {
        failover::FailoverConfig fcfg;
        fcfg.snapshot_cadence = cadence;
        fcfg.kill_boundary = kKillBoundary;
        const failover::FailoverRunResult run =
            failover::RunWithFailover(trace, MakeApp, cfg, fcfg);

        ResultRow row;
        row.cadence = cadence;
        row.merge_threads = merge;
        row.threads = threads;
        row.report = run.report;
        row.cmp = failover::CompareWindows(ref, run.spliced);
        row.windows_lost = row.cmp.windows_total - row.cmp.exact;
        PrintRow(row);

        // The takeover contract, everywhere: nothing absent, nothing
        // silently divergent, always caught up.
        if (row.cmp.lost || row.cmp.divergent_unflagged ||
            !row.report.caught_up) {
          std::printf("FAIL: takeover contract violated in cadence=%zu "
                      "mt=%zu thr=%zu\n",
                      cadence, merge, threads);
          ok = false;
        }
        // The headline gate: cadence 1 keeps the staleness inside the
        // switch retransmission cache — zero windows lost.
        if (cadence == 1 && row.windows_lost != 0) {
          std::printf("FAIL: %zu windows lost at cadence 1 (mt=%zu "
                      "thr=%zu)\n",
                      row.windows_lost, merge, threads);
          ok = false;
        }
        rows.push_back(std::move(row));
      }
    }
  }

  if (WriteJson(out_path, trace, rows)) {
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::printf("\nFAILED to write %s\n", out_path.c_str());
    return 2;
  }
  return ok ? 0 : 1;
}
