// Exp#14: process-lifetime splice — durable checkpoints across real
// process restarts.
//
// Drives a trace "larger than one process lifetime": the run is cut into
// segments at every checkpoint cadence (8 sub-window boundaries), and each
// segment runs in a FRESH PROCESS (this binary re-execs itself in --child
// mode) that restores the previous segment's durable checkpoint file,
// drives its boundary range, writes the next checkpoint, and dumps the
// windows it emitted. The parent splices the per-segment window streams
// and asserts BIT-IDENTITY with an uninterrupted in-process reference —
// spans, completion times, partial flags, detection sets, delivered and
// per-link counters all equal. Swept over merge_threads {1,4} x fabric
// engine threads {0,4}.
//
// Measured into BENCH_lifetime.json (committed baseline, gated by
// tools/check_bench_regression.py --metrics=bytes):
//   snapshot_bytes        occupancy-aware (auto) checkpoint payload bytes —
//                         the headline; scales with live state, not the
//                         provisioned KV capacity (shrink is good)
//   dense_snapshot_bytes  the same state force-encoded dense (the v2 cost)
//   sparse_reduction      dense/auto — must stay >= 10x on this workload
//   checkpoint_file_bytes durable file size (payload + CRC index + footer)
// plus informational wall metrics: write bandwidth, per-segment restart
// cost, and restart amortization (spliced wall / reference wall).
//
// The parent also runs a corrupt-checkpoint sweep over the first durable
// file: bit flips and truncations at spread offsets must ALL fail with
// SnapshotError (the CRC framing + untrusted-size decoding), never load.
//
// Exits non-zero on any splice divergence, a sparse reduction below 10x,
// or a corruption that loads silently. CI's lifetime-smoke job runs this
// binary at the default --pps (the committed baseline uses the same).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/common/snapshot.h"
#include "src/core/network_runner.h"
#include "src/telemetry/exact_count.h"
#include "src/trace/generator.h"

namespace {

using namespace ow;

constexpr std::uint64_t kSeed = 1407;
constexpr Nanos kDuration = 2'500 * kMilli;
constexpr Nanos kSub = 50 * kMilli;
/// Sub-window boundaries per process segment (checkpoint cadence).
constexpr std::size_t kCadence = 8;
/// Boundaries 1..kTotal cover the trace plus the end-of-trace sentinel.
constexpr std::size_t kTotal = std::size_t((kDuration + 2 * kSub) / kSub);

double ArgD(int argc, char** argv, const char* flag, double def) {
  const std::string prefix = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return std::stod(arg.substr(prefix.size()));
  }
  return def;
}

std::string ArgS(int argc, char** argv, const char* flag,
                 const std::string& def) {
  const std::string prefix = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return def;
}

bool HasArg(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) return true;
  }
  return false;
}

Trace MakeTrace(double pps) {
  TraceConfig tc;
  tc.seed = kSeed;
  tc.duration = kDuration;
  tc.packets_per_sec = pps;
  tc.num_flows = 2'000;
  TraceGenerator gen(tc);
  return gen.GenerateBackground();
}

NetworkRunConfig BaseConfig(std::size_t merge, std::size_t threads) {
  WindowSpec spec;
  spec.type = WindowType::kSliding;
  spec.window_size = 500 * kMilli;
  spec.subwindow_size = kSub;
  spec.slide = kSub;
  NetworkRunConfig cfg;
  cfg.base = RunConfig::Make(spec);
  // Provisioned far above the ~2k live flows: the sparse-vs-dense gap this
  // bench exists to measure (dense serializes all 1<<17 slots per switch).
  cfg.base.controller.kv_capacity = 1 << 17;
  cfg.base.controller.merge_threads = merge;
  cfg.topology.kind = TopologyKind::kLeafSpine;
  cfg.topology.leaves = 2;
  cfg.topology.spines = 2;
  cfg.link.latency = 20 * kMicro;
  cfg.link.jitter = 2 * kMicro;
  cfg.parallel.threads = threads;
  return cfg;
}

AdapterPtr MakeApp(std::size_t) { return std::make_shared<ExactCountApp>(); }

FlowSet Detect(TableView table) {
  // Heavy-hitter detection keeps the window stream content-bearing, so the
  // splice comparison covers detection sets, not just spans.
  FlowSet out;
  table.ForEach([&out](const KvSlot& s) {
    if (s.num_attrs > 0 && s.attrs[0] >= 16) out.insert(s.key);
  });
  return out;
}

/// A window normalized for cross-process comparison: FlowSet iteration
/// order is process-local, so detections are dumped byte-sorted.
struct FlatWindow {
  SubWindowNum first = 0;
  SubWindowNum last = 0;
  Nanos completed_at = 0;
  bool partial = false;
  std::vector<FlowKey> detected;

  bool operator==(const FlatWindow& o) const {
    if (first != o.first || last != o.last || completed_at != o.completed_at ||
        partial != o.partial || detected.size() != o.detected.size()) {
      return false;
    }
    return std::memcmp(detected.data(), o.detected.data(),
                       detected.size() * sizeof(FlowKey)) == 0;
  }
};

struct FlatRun {
  std::vector<std::vector<FlatWindow>> per_switch;
  bool has_final = false;
  std::uint64_t delivered = 0;
  std::uint64_t link_dropped = 0;
  std::uint64_t report_dropped = 0;
  std::vector<FabricLinkStats> links;
};

std::vector<FlowKey> SortedKeys(const FlowSet& s) {
  std::vector<FlowKey> keys(s.begin(), s.end());
  std::sort(keys.begin(), keys.end(), [](const FlowKey& a, const FlowKey& b) {
    return std::memcmp(&a, &b, sizeof(FlowKey)) < 0;
  });
  return keys;
}

FlatRun FlattenResult(const NetworkRunResult& r, bool final) {
  FlatRun out;
  out.per_switch.resize(r.per_switch.size());
  for (std::size_t i = 0; i < r.per_switch.size(); ++i) {
    for (const EmittedWindow& w : r.per_switch[i].windows) {
      FlatWindow fw;
      fw.first = w.span.first;
      fw.last = w.span.last;
      fw.completed_at = w.completed_at;
      fw.partial = w.partial;
      fw.detected = SortedKeys(w.detected);
      out.per_switch[i].push_back(std::move(fw));
    }
  }
  out.has_final = final;
  if (final) {
    out.delivered = r.delivered;
    out.link_dropped = r.link_dropped;
    out.report_dropped = r.report_dropped;
    out.links = r.links;
  }
  return out;
}

void DumpRun(const FlatRun& run, const std::string& path) {
  SnapshotWriter w;
  w.Bool(run.has_final);
  w.Size(run.per_switch.size());
  for (const auto& windows : run.per_switch) {
    w.Size(windows.size());
    for (const FlatWindow& fw : windows) {
      w.U32(fw.first);
      w.U32(fw.last);
      w.I64(fw.completed_at);
      w.Bool(fw.partial);
      w.PodVec(fw.detected);
    }
  }
  if (run.has_final) {
    w.U64(run.delivered);
    w.U64(run.link_dropped);
    w.U64(run.report_dropped);
    w.PodVec(run.links);
  }
  w.WriteFile(path);
}

FlatRun ReadRun(const std::string& path) {
  const std::vector<std::uint8_t> bytes = ReadSnapshotFile(path);
  SnapshotReader r(bytes);
  FlatRun run;
  run.has_final = r.Bool();
  run.per_switch.resize(r.Count(8));
  for (auto& windows : run.per_switch) {
    windows.resize(r.Count(4 + 4 + 8 + 1 + 8));
    for (FlatWindow& fw : windows) {
      fw.first = r.U32();
      fw.last = r.U32();
      fw.completed_at = r.I64();
      fw.partial = r.Bool();
      r.PodVec(fw.detected);
    }
  }
  if (run.has_final) {
    run.delivered = r.U64();
    run.link_dropped = r.U64();
    run.report_dropped = r.U64();
    r.PodVec(run.links);
  }
  return run;
}

/// Splice the per-segment streams (restore clears pre-restore windows, so
/// concatenation in segment order is exact) and compare against the
/// reference. Returns a human-readable mismatch description, empty = ok.
std::string CompareSplice(const FlatRun& ref,
                          const std::vector<FlatRun>& segments) {
  FlatRun spliced;
  spliced.per_switch.resize(ref.per_switch.size());
  for (const FlatRun& seg : segments) {
    if (seg.per_switch.size() != ref.per_switch.size()) {
      return "switch count mismatch in a segment dump";
    }
    for (std::size_t i = 0; i < seg.per_switch.size(); ++i) {
      spliced.per_switch[i].insert(spliced.per_switch[i].end(),
                                   seg.per_switch[i].begin(),
                                   seg.per_switch[i].end());
    }
    if (seg.has_final) {
      spliced.has_final = true;
      spliced.delivered = seg.delivered;
      spliced.link_dropped = seg.link_dropped;
      spliced.report_dropped = seg.report_dropped;
      spliced.links = seg.links;
    }
  }
  for (std::size_t i = 0; i < ref.per_switch.size(); ++i) {
    if (spliced.per_switch[i].size() != ref.per_switch[i].size()) {
      return "switch " + std::to_string(i) + ": " +
             std::to_string(spliced.per_switch[i].size()) +
             " spliced windows vs " +
             std::to_string(ref.per_switch[i].size()) + " reference";
    }
    for (std::size_t k = 0; k < ref.per_switch[i].size(); ++k) {
      if (!(spliced.per_switch[i][k] == ref.per_switch[i][k])) {
        return "switch " + std::to_string(i) + " window " +
               std::to_string(k) + " diverges";
      }
    }
  }
  if (!spliced.has_final) return "no final segment dump";
  if (spliced.delivered != ref.delivered) return "delivered totals diverge";
  if (spliced.link_dropped != ref.link_dropped ||
      spliced.report_dropped != ref.report_dropped) {
    return "drop totals diverge";
  }
  if (spliced.links.size() != ref.links.size()) {
    return "per-link counters diverge";
  }
  // Field-wise, not memcmp: FabricLinkStats has padding bytes.
  for (std::size_t i = 0; i < ref.links.size(); ++i) {
    const FabricLinkStats& a = spliced.links[i];
    const FabricLinkStats& b = ref.links[i];
    if (a.from != b.from || a.to != b.to || a.port != b.port ||
        a.transmitted != b.transmitted || a.dropped != b.dropped ||
        a.duplicates != b.duplicates) {
      return "per-link counters diverge at link " + std::to_string(i);
    }
  }
  return "";
}

std::uint64_t WallNs() {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count());
}

std::size_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? std::size_t(in.tellg()) : 0;
}

/// Child mode: one process lifetime. Restore the previous checkpoint (if
/// any), drive [from, to] boundaries, checkpoint to disk (unless final)
/// and dump the windows this lifetime emitted.
int RunChild(int argc, char** argv) {
  const double pps = ArgD(argc, argv, "--pps", 8'000);
  const std::size_t merge = std::size_t(ArgD(argc, argv, "--merge", 1));
  const std::size_t threads = std::size_t(ArgD(argc, argv, "--threads", 0));
  const std::size_t to = std::size_t(ArgD(argc, argv, "--to", 0));
  const std::string restore = ArgS(argc, argv, "--restore", "");
  const std::string ckpt = ArgS(argc, argv, "--ckpt", "");
  const std::string dump = ArgS(argc, argv, "--dump", "");
  const bool final = HasArg(argc, argv, "--finish");

  const Trace trace = MakeTrace(pps);
  FabricSession session(trace, MakeApp, BaseConfig(merge, threads), Detect);
  if (!restore.empty()) session.RestoreFromFile(restore);
  for (std::size_t k = std::size_t(ArgD(argc, argv, "--from", 0)) + 1;
       k <= to; ++k) {
    session.DriveUntil(Nanos(k) * kSub);
  }
  if (final) {
    DumpRun(FlattenResult(session.Finish(), true), dump);
  } else {
    session.SnapshotToFile(ckpt, KvSnapshotMode::kAuto);
    DumpRun(FlattenResult(session.partial_result(), false), dump);
  }
  return 0;
}

struct ResultRow {
  std::size_t merge_threads = 1;
  std::size_t threads = 0;
  std::size_t segments = 0;
  std::size_t checkpoints = 0;
  double snapshot_bytes = 0;        ///< avg auto-encoded payload bytes
  double dense_snapshot_bytes = 0;  ///< avg force-dense payload bytes
  double sparse_reduction = 0;      ///< dense / auto
  std::size_t checkpoint_file_bytes = 0;  ///< first durable file, framed
  double write_mbps = 0;
  double ref_wall_ms = 0;
  double splice_wall_ms = 0;
  double restart_overhead = 0;  ///< splice wall / reference wall
  bool splice_identical = false;
  std::size_t corrupt_trials = 0;
  std::size_t corrupt_caught = 0;
};

bool WriteJson(const std::string& path, const Trace& trace,
               const std::vector<ResultRow>& rows) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"bench\": \"lifetime\",\n";
  out << "  \"trace\": {\"name\": \"GenerateBackground(" << kSeed
      << ")\", \"packets\": " << trace.packets.size()
      << ", \"duration_ms\": " << kDuration / kMilli << "},\n";
  out << "  \"host_cpus\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"checkpoint_cadence_boundaries\": " << kCadence << ",\n";
  out << "  \"results\": [\n";
  char buf[160];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& r = rows[i];
    out << "    {\"workload\": \"lifetime-mt" << r.merge_threads << "\""
        << ", \"threads\": " << r.threads
        << ", \"merge_threads\": " << r.merge_threads
        << ", \"segments\": " << r.segments
        << ", \"checkpoints\": " << r.checkpoints;
    std::snprintf(buf, sizeof(buf),
                  ", \"snapshot_bytes\": %.0f"
                  ", \"dense_snapshot_bytes\": %.0f"
                  ", \"sparse_reduction\": %.2f"
                  ", \"checkpoint_file_bytes\": %zu",
                  r.snapshot_bytes, r.dense_snapshot_bytes,
                  r.sparse_reduction, r.checkpoint_file_bytes);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  ", \"write_MBps\": %.1f, \"ref_wall_ms\": %.1f"
                  ", \"splice_wall_ms\": %.1f, \"restart_overhead\": %.2f",
                  r.write_mbps, r.ref_wall_ms, r.splice_wall_ms,
                  r.restart_overhead);
    out << buf << ", \"splice_identical\": "
        << (r.splice_identical ? "true" : "false")
        << ", \"corrupt_trials\": " << r.corrupt_trials
        << ", \"corrupt_caught\": " << r.corrupt_caught << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return bool(out);
}

/// Bit-flip and truncate a durable checkpoint at spread offsets: every
/// corruption must throw SnapshotError out of the framed read (or, for the
/// header region the CRC index cannot localize, out of the decoder).
void CorruptSweep(const std::string& ckpt_path, ResultRow& row) {
  std::ifstream in(ckpt_path, std::ios::binary);
  std::vector<char> file((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const std::string tmp = ckpt_path + ".corrupt";
  auto expect_throw = [&](const std::vector<char>& bytes) {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), std::streamsize(bytes.size()));
    out.close();
    ++row.corrupt_trials;
    try {
      ReadSnapshotFile(tmp);
    } catch (const SnapshotError&) {
      ++row.corrupt_caught;
    }
  };
  constexpr std::size_t kFlips = 64;
  for (std::size_t i = 0; i < kFlips; ++i) {
    std::vector<char> flipped = file;
    const std::size_t at = (i * file.size()) / kFlips;
    flipped[at] = char(flipped[at] ^ (1 << (i % 8)));
    expect_throw(flipped);
  }
  for (const double frac : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    std::vector<char> cut = file;
    cut.resize(std::size_t(double(file.size()) * frac));
    expect_throw(cut);
  }
  std::remove(tmp.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (HasArg(argc, argv, "--child")) return RunChild(argc, argv);

  const double pps = ArgD(argc, argv, "--pps", 8'000);
  const std::string out_path =
      bench::OutPathFromArgs(argc, argv, "BENCH_lifetime.json");
  const Trace trace = MakeTrace(pps);

  // Segment boundaries: a checkpoint every kCadence boundaries, final
  // segment runs to the sentinel and finishes.
  std::vector<std::size_t> cuts;
  for (std::size_t k = kCadence; k + 1 < kTotal; k += kCadence) {
    cuts.push_back(k);
  }
  std::printf(
      "Exp#14: process-lifetime splice — %zu packets, %lld ms, %zu "
      "boundaries, checkpoint every %zu (%zu process segments)\n\n",
      trace.packets.size(), (long long)(kDuration / kMilli), kTotal, kCadence,
      cuts.size() + 1);

  std::vector<ResultRow> rows;
  bool ok = true;
  for (const std::size_t merge : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
      ResultRow row;
      row.merge_threads = merge;
      row.threads = threads;
      row.segments = cuts.size() + 1;

      // Uninterrupted reference, sampling auto-vs-dense checkpoint bytes
      // at every would-be checkpoint boundary.
      const std::uint64_t ref_start = WallNs();
      FabricSession ref_session(trace, MakeApp, BaseConfig(merge, threads),
                                Detect);
      double auto_bytes = 0, dense_bytes = 0;
      std::size_t next_cut = 0;
      for (std::size_t k = 1; k < kTotal; ++k) {
        ref_session.DriveUntil(Nanos(k) * kSub);
        if (next_cut < cuts.size() && k == cuts[next_cut]) {
          auto_bytes +=
              double(ref_session.Snapshot(KvSnapshotMode::kAuto).size());
          dense_bytes +=
              double(ref_session.Snapshot(KvSnapshotMode::kDense).size());
          ++next_cut;
          ++row.checkpoints;
        }
      }
      const FlatRun ref = FlattenResult(ref_session.Finish(), true);
      row.ref_wall_ms = double(WallNs() - ref_start) / 1e6;
      row.snapshot_bytes = auto_bytes / double(row.checkpoints);
      row.dense_snapshot_bytes = dense_bytes / double(row.checkpoints);
      row.sparse_reduction = dense_bytes / auto_bytes;

      // Segmented run: each lifetime is a real child process.
      const std::string tag =
          "exp14_mt" + std::to_string(merge) + "_t" + std::to_string(threads);
      const std::uint64_t splice_start = WallNs();
      std::vector<FlatRun> segments;
      bool spawn_ok = true;
      for (std::size_t s = 0; s <= cuts.size(); ++s) {
        const std::size_t from = s == 0 ? 0 : cuts[s - 1];
        const bool final = s == cuts.size();
        const std::size_t to = final ? kTotal : cuts[s];
        const std::string ckpt = tag + "_ck" + std::to_string(s) + ".owsnap";
        const std::string dump = tag + "_seg" + std::to_string(s) + ".bin";
        std::string cmd = std::string(argv[0]) + " --child --pps=" +
                          std::to_string(pps) +
                          " --merge=" + std::to_string(merge) +
                          " --threads=" + std::to_string(threads) +
                          " --from=" + std::to_string(from) +
                          " --to=" + std::to_string(to) + " --dump=" + dump;
        if (s > 0) cmd += " --restore=" + tag + "_ck" +
                          std::to_string(s - 1) + ".owsnap";
        if (final) {
          cmd += " --finish";
        } else {
          cmd += " --ckpt=" + ckpt;
        }
        if (std::system(cmd.c_str()) != 0) {
          std::printf("FAIL: child segment %zu exited non-zero (mt=%zu "
                      "thr=%zu)\n",
                      s, merge, threads);
          spawn_ok = false;
          break;
        }
        segments.push_back(ReadRun(dump));
      }
      row.splice_wall_ms = double(WallNs() - splice_start) / 1e6;
      row.restart_overhead =
          row.ref_wall_ms > 0 ? row.splice_wall_ms / row.ref_wall_ms : 0;

      if (spawn_ok) {
        const std::string mismatch = CompareSplice(ref, segments);
        row.splice_identical = mismatch.empty();
        if (!row.splice_identical) {
          std::printf("FAIL: splice diverges (mt=%zu thr=%zu): %s\n", merge,
                      threads, mismatch.c_str());
        }
      }
      ok = ok && spawn_ok && row.splice_identical;

      // Durable-file metrics + corruption sweep on the first checkpoint.
      const std::string first_ck = tag + "_ck0.owsnap";
      row.checkpoint_file_bytes = FileBytes(first_ck);
      {
        const std::uint64_t w0 = WallNs();
        FabricSession probe(trace, MakeApp, BaseConfig(merge, threads),
                            Detect);
        probe.RestoreFromFile(first_ck);
        const std::string wtmp = tag + "_wprobe.owsnap";
        probe.SnapshotToFile(wtmp, KvSnapshotMode::kAuto);
        const std::uint64_t w1 = WallNs();
        row.write_mbps = double(FileBytes(wtmp)) / 1e6 /
                         (double(w1 - w0) / 1e9);
        std::remove(wtmp.c_str());
      }
      CorruptSweep(first_ck, row);
      if (row.corrupt_caught != row.corrupt_trials) {
        std::printf("FAIL: %zu/%zu corruptions loaded without SnapshotError "
                    "(mt=%zu thr=%zu)\n",
                    row.corrupt_trials - row.corrupt_caught,
                    row.corrupt_trials, merge, threads);
        ok = false;
      }
      if (row.sparse_reduction < 10.0) {
        std::printf("FAIL: sparse reduction %.2fx below the 10x bar (mt=%zu "
                    "thr=%zu)\n",
                    row.sparse_reduction, merge, threads);
        ok = false;
      }

      for (std::size_t s = 0; s <= cuts.size(); ++s) {
        std::remove((tag + "_ck" + std::to_string(s) + ".owsnap").c_str());
        std::remove((tag + "_seg" + std::to_string(s) + ".bin").c_str());
      }

      std::printf(
          "mt=%zu thr=%zu  segments=%zu ckpt=%6.0fKB dense=%7.0fKB "
          "(%.1fx)  file=%zuB write=%.0fMB/s  ref=%.0fms splice=%.0fms "
          "(%.2fx)  corrupt=%zu/%zu  %s\n",
          merge, threads, row.segments, row.snapshot_bytes / 1e3,
          row.dense_snapshot_bytes / 1e3, row.sparse_reduction,
          row.checkpoint_file_bytes, row.write_mbps, row.ref_wall_ms,
          row.splice_wall_ms, row.restart_overhead, row.corrupt_caught,
          row.corrupt_trials,
          row.splice_identical ? "splice-identical" : "SPLICE DIVERGED");
      rows.push_back(row);
    }
  }

  if (WriteJson(out_path, trace, rows)) {
    std::printf("\nwrote %s\n", out_path.c_str());
  } else {
    std::printf("\nFAILED to write %s\n", out_path.c_str());
    return 2;
  }
  return ok ? 0 : 1;
}
