// Exp#11: OmniWindow on arbitrary fabrics — scale sweep and hop-by-hop
// loss localization fidelity.
//
// Part A replays one trace through fabrics of growing size (line, tree,
// leaf-spine) with a per-switch app + controller each, and reports the
// simulation cost and the per-link load the deterministic ECMP produced.
//
// Part B arms a drop fault on ONE leaf-spine link and localizes it from the
// per-switch consistent windows alone (per-link flow conservation,
// LocalizeFlowLoss). The sweep varies the measurement instrument: an exact
// per-flow counter, then QueryAdapter at shrinking cell counts. The exact
// instrument charges every lost packet to the armed link and nothing
// anywhere else; hash-cell collisions (the paper's residual-error model for
// Sonata-style operators) appear as phantom loss on unarmed links as the
// table tightens — localization inherits the app's error, the window
// mechanism adds none of its own.
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/network_runner.h"
#include "src/telemetry/exact_count.h"
#include "src/telemetry/network_queries.h"
#include "src/telemetry/query_builder.h"
#include "src/trace/generator.h"

namespace {

using namespace ow;

Trace MakeTrace(std::uint64_t seed) {
  TraceConfig tc;
  tc.seed = seed;
  tc.duration = 400 * kMilli;
  tc.packets_per_sec = 25'000;
  tc.num_flows = 2'500;
  TraceGenerator gen(tc);
  return gen.GenerateBackground();
}

NetworkRunConfig BaseConfig(TopologyConfig topo) {
  WindowSpec spec;
  spec.type = WindowType::kTumbling;
  spec.window_size = 100 * kMilli;
  spec.subwindow_size = 50 * kMilli;
  spec.slide = spec.window_size;
  NetworkRunConfig cfg;
  cfg.base = RunConfig::Make(spec);
  cfg.base.controller.kv_capacity = 1 << 16;
  cfg.topology = topo;
  cfg.capture_counts = true;
  cfg.link.latency = 20 * kMicro;
  cfg.link.jitter = 0;
  return cfg;
}

QueryDef CountAllDef() {
  return QueryBuilder("count_all")
      .KeyBy(FlowKeyKind::kFiveTuple)
      .Count()
      .Threshold(1)
      .Build();
}

// ---------------------------------------------------------------------------
// Part A: fabric scale sweep.

void ScaleSweep(const Trace& trace) {
  struct Row {
    const char* name;
    TopologyConfig topo;
  };
  std::vector<Row> rows;
  {
    TopologyConfig t;
    t.kind = TopologyKind::kLine;
    t.line_switches = 4;
    rows.push_back({"line-4", t});
  }
  {
    TopologyConfig t;
    t.kind = TopologyKind::kTree;
    t.tree_fanout = 2;
    t.tree_depth = 2;
    rows.push_back({"tree-2x2", t});
  }
  {
    TopologyConfig t;
    t.kind = TopologyKind::kLeafSpine;
    t.leaves = 2;
    t.spines = 2;
    rows.push_back({"leafspine-2x2", t});
  }
  {
    TopologyConfig t;
    t.kind = TopologyKind::kLeafSpine;
    t.leaves = 4;
    t.spines = 3;
    rows.push_back({"leafspine-4x3", t});
  }

  std::printf("%14s %9s %6s %8s %10s %9s %10s\n", "topology", "switches",
              "links", "windows", "delivered", "wall(ms)", "pkts/s");
  for (const Row& row : rows) {
    NetworkRunConfig cfg = BaseConfig(row.topo);
    const auto t0 = std::chrono::steady_clock::now();
    const NetworkRunResult net = RunOmniWindowFabric(
        trace, [](std::size_t) { return std::make_shared<ExactCountApp>(); },
        cfg);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::size_t windows = 0;
    for (const SwitchRun& sw : net.per_switch) windows += sw.windows.size();
    std::printf("%14s %9zu %6zu %8zu %10llu %9.1f %10.0f\n", row.name,
                net.per_switch.size(), net.links.size(), windows,
                (unsigned long long)net.delivered, ms,
                double(trace.packets.size()) / (ms / 1e3));
  }
}

// ---------------------------------------------------------------------------
// Part B: localization fidelity vs measurement instrument.

struct LocalizationOutcome {
  std::uint64_t true_drops = 0;
  std::uint64_t on_armed = 0;
  std::uint64_t elsewhere = 0;
  std::size_t windows = 0;
};

LocalizationOutcome Localize(
    const Trace& trace, const NetworkRunConfig& cfg,
    const std::function<AdapterPtr(std::size_t)>& make_app) {
  const NetworkRunResult net = RunOmniWindowFabric(trace, make_app, cfg);
  const NextHopFn next_hop = MakeTopologyNextHop(cfg.topology);
  LocalizationOutcome out;
  out.true_drops = net.links[std::size_t(cfg.fault_link_index)].dropped;
  const int armed_from = net.links[std::size_t(cfg.fault_link_index)].from;
  const int armed_to = net.links[std::size_t(cfg.fault_link_index)].to;
  for (const auto& [span, counts0] : net.per_switch[0].counts) {
    std::vector<FlowCounts> per_switch{counts0};
    bool complete = true;
    for (std::size_t i = 1; i < net.per_switch.size(); ++i) {
      const auto it = net.per_switch[i].counts.find(span);
      if (it == net.per_switch[i].counts.end()) {
        complete = false;
        break;
      }
      per_switch.push_back(it->second);
    }
    if (!complete) continue;
    ++out.windows;
    for (const LinkLossReport& link : LocalizeFlowLoss(per_switch, next_hop)) {
      if (link.from == armed_from && link.to == armed_to) {
        out.on_armed += link.lost();
      } else {
        out.elsewhere += link.lost();
      }
    }
  }
  return out;
}

void LocalizationSweep(const Trace& trace) {
  TopologyConfig topo;
  topo.kind = TopologyKind::kLeafSpine;
  topo.leaves = 2;
  topo.spines = 2;
  NetworkRunConfig cfg = BaseConfig(topo);
  cfg.base.fault.inner_link.drop_rate = 0.05;
  cfg.fault_link_index = 2;  // spine 2 -> egress leaf 1

  struct Row {
    std::string name;
    std::function<AdapterPtr(std::size_t)> make_app;
  };
  std::vector<Row> rows;
  rows.push_back({"exact", [](std::size_t) {
                    return std::make_shared<ExactCountApp>();
                  }});
  for (const std::size_t cells : {std::size_t(1) << 16, std::size_t(1) << 13,
                                  std::size_t(1) << 11}) {
    rows.push_back({"query-" + std::to_string(cells), [cells](std::size_t) {
                      return std::make_shared<QueryAdapter>(CountAllDef(),
                                                            cells);
                    }});
  }

  std::printf("%14s %10s %10s %10s %8s\n", "instrument", "true", "on-armed",
              "phantom", "windows");
  for (const Row& row : rows) {
    const LocalizationOutcome o = Localize(trace, cfg, row.make_app);
    std::printf("%14s %10llu %10llu %10llu %8zu\n", row.name.c_str(),
                (unsigned long long)o.true_drops,
                (unsigned long long)o.on_armed,
                (unsigned long long)o.elsewhere, o.windows);
  }
}

}  // namespace

int main() {
  const Trace trace = MakeTrace(1101);
  std::printf("Exp#11: OmniWindow on arbitrary fabrics "
              "(%zu packets, 400 ms, per-switch controllers)\n\n",
              trace.packets.size());
  std::printf("-- Part A: fabric scale sweep (exact per-flow app) --\n");
  ScaleSweep(trace);
  std::printf("\n-- Part B: leaf-spine 2x2, 5%% drop armed on spine2->leaf1, "
              "localization by flow conservation --\n");
  LocalizationSweep(trace);
  std::printf("\n(The exact instrument charges every drop to the armed link; "
              "shrinking hash tables add collision phantoms — the residual "
              "error is the app's, not the window mechanism's.)\n");
  return 0;
}
