// Exp#11: OmniWindow on arbitrary fabrics — scale sweep and hop-by-hop
// loss localization fidelity.
//
// Part A replays one trace through fabrics of growing size (line, tree,
// leaf-spine) with a per-switch app + controller each, and reports the
// simulation cost and the per-link load the deterministic ECMP produced.
//
// Part B arms a drop fault on ONE leaf-spine link and localizes it from the
// per-switch consistent windows alone (per-link flow conservation,
// LocalizeFlowLoss). The sweep varies the measurement instrument: an exact
// per-flow counter, then QueryAdapter at shrinking cell counts. The exact
// instrument charges every lost packet to the armed link and nothing
// anywhere else; hash-cell collisions (the paper's residual-error model for
// Sonata-style operators) appear as phantom loss on unarmed links as the
// table tightens — localization inherits the app's error, the window
// mechanism adds none of its own.
//
// Part C sweeps the conservative-lookahead parallel fabric engine
// (docs/parallel_execution.md) over thread count x fabric size and emits
// BENCH_fabric.json (override with --out=, round budget with --min-time=)
// for the regression gate in tools/check_bench_regression.py.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "src/core/network_runner.h"
#include "src/obs/obs.h"
#include "src/telemetry/exact_count.h"
#include "src/telemetry/network_queries.h"
#include "src/telemetry/query_builder.h"
#include "src/trace/generator.h"

namespace {

using namespace ow;

Trace MakeTrace(std::uint64_t seed) {
  TraceConfig tc;
  tc.seed = seed;
  tc.duration = 400 * kMilli;
  tc.packets_per_sec = 25'000;
  tc.num_flows = 2'500;
  TraceGenerator gen(tc);
  return gen.GenerateBackground();
}

NetworkRunConfig BaseConfig(TopologyConfig topo) {
  WindowSpec spec;
  spec.type = WindowType::kTumbling;
  spec.window_size = 100 * kMilli;
  spec.subwindow_size = 50 * kMilli;
  spec.slide = spec.window_size;
  NetworkRunConfig cfg;
  cfg.base = RunConfig::Make(spec);
  cfg.base.controller.kv_capacity = 1 << 16;
  cfg.topology = topo;
  cfg.capture_counts = true;
  cfg.link.latency = 20 * kMicro;
  cfg.link.jitter = 0;
  return cfg;
}

QueryDef CountAllDef() {
  return QueryBuilder("count_all")
      .KeyBy(FlowKeyKind::kFiveTuple)
      .Count()
      .Threshold(1)
      .Build();
}

// ---------------------------------------------------------------------------
// Part A: fabric scale sweep.

void ScaleSweep(const Trace& trace) {
  struct Row {
    const char* name;
    TopologyConfig topo;
  };
  std::vector<Row> rows;
  {
    TopologyConfig t;
    t.kind = TopologyKind::kLine;
    t.line_switches = 4;
    rows.push_back({"line-4", t});
  }
  {
    TopologyConfig t;
    t.kind = TopologyKind::kTree;
    t.tree_fanout = 2;
    t.tree_depth = 2;
    rows.push_back({"tree-2x2", t});
  }
  {
    TopologyConfig t;
    t.kind = TopologyKind::kLeafSpine;
    t.leaves = 2;
    t.spines = 2;
    rows.push_back({"leafspine-2x2", t});
  }
  {
    TopologyConfig t;
    t.kind = TopologyKind::kLeafSpine;
    t.leaves = 4;
    t.spines = 3;
    rows.push_back({"leafspine-4x3", t});
  }

  std::printf("%14s %9s %6s %8s %10s %9s %10s\n", "topology", "switches",
              "links", "windows", "delivered", "wall(ms)", "pkts/s");
  for (const Row& row : rows) {
    NetworkRunConfig cfg = BaseConfig(row.topo);
    const auto t0 = std::chrono::steady_clock::now();
    const NetworkRunResult net = RunOmniWindowFabric(
        trace, [](std::size_t) { return std::make_shared<ExactCountApp>(); },
        cfg);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::size_t windows = 0;
    for (const SwitchRun& sw : net.per_switch) windows += sw.windows.size();
    std::printf("%14s %9zu %6zu %8zu %10llu %9.1f %10.0f\n", row.name,
                net.per_switch.size(), net.links.size(), windows,
                (unsigned long long)net.delivered, ms,
                double(trace.packets.size()) / (ms / 1e3));
  }
}

// ---------------------------------------------------------------------------
// Part B: localization fidelity vs measurement instrument.

struct LocalizationOutcome {
  std::uint64_t true_drops = 0;
  std::uint64_t on_armed = 0;
  std::uint64_t elsewhere = 0;
  std::size_t windows = 0;
};

LocalizationOutcome Localize(
    const Trace& trace, const NetworkRunConfig& cfg,
    const std::function<AdapterPtr(std::size_t)>& make_app) {
  const NetworkRunResult net = RunOmniWindowFabric(trace, make_app, cfg);
  const NextHopFn next_hop = MakeTopologyNextHop(cfg.topology);
  LocalizationOutcome out;
  out.true_drops = net.links[std::size_t(cfg.fault_link_index)].dropped;
  const int armed_from = net.links[std::size_t(cfg.fault_link_index)].from;
  const int armed_to = net.links[std::size_t(cfg.fault_link_index)].to;
  for (const auto& [span, counts0] : net.per_switch[0].counts) {
    std::vector<FlowCounts> per_switch{counts0};
    bool complete = true;
    for (std::size_t i = 1; i < net.per_switch.size(); ++i) {
      const auto it = net.per_switch[i].counts.find(span);
      if (it == net.per_switch[i].counts.end()) {
        complete = false;
        break;
      }
      per_switch.push_back(it->second);
    }
    if (!complete) continue;
    ++out.windows;
    for (const LinkLossReport& link : LocalizeFlowLoss(per_switch, next_hop)) {
      if (link.from == armed_from && link.to == armed_to) {
        out.on_armed += link.lost();
      } else {
        out.elsewhere += link.lost();
      }
    }
  }
  return out;
}

void LocalizationSweep(const Trace& trace) {
  TopologyConfig topo;
  topo.kind = TopologyKind::kLeafSpine;
  topo.leaves = 2;
  topo.spines = 2;
  NetworkRunConfig cfg = BaseConfig(topo);
  cfg.base.fault.inner_link.drop_rate = 0.05;
  cfg.fault_link_index = 2;  // spine 2 -> egress leaf 1

  struct Row {
    std::string name;
    std::function<AdapterPtr(std::size_t)> make_app;
  };
  std::vector<Row> rows;
  rows.push_back({"exact", [](std::size_t) {
                    return std::make_shared<ExactCountApp>();
                  }});
  for (const std::size_t cells : {std::size_t(1) << 16, std::size_t(1) << 13,
                                  std::size_t(1) << 11}) {
    rows.push_back({"query-" + std::to_string(cells), [cells](std::size_t) {
                      return std::make_shared<QueryAdapter>(CountAllDef(),
                                                            cells);
                    }});
  }

  std::printf("%14s %10s %10s %10s %8s\n", "instrument", "true", "on-armed",
              "phantom", "windows");
  for (const Row& row : rows) {
    const LocalizationOutcome o = Localize(trace, cfg, row.make_app);
    std::printf("%14s %10llu %10llu %10llu %8zu\n", row.name.c_str(),
                (unsigned long long)o.true_drops,
                (unsigned long long)o.on_armed,
                (unsigned long long)o.elsewhere, o.windows);
  }
}

// ---------------------------------------------------------------------------
// Part C: parallel engine, thread-count x fabric-size sweep.

/// Sum-of-worker-busy over max-worker-busy from the `net.parallel.busy_ns.*`
/// counters of the runs since the last obs reset: how much concurrent work
/// the conservative horizons exposed, independent of how many cores the
/// host actually has (the perf_merge convention for 1-2 vCPU CI hosts —
/// wall-clock speedup is only meaningful when host_cpus covers the workers).
double CriticalPathSpeedup(std::size_t threads) {
  std::uint64_t sum = 0, longest = 0;
  for (std::size_t w = 0; w < threads; ++w) {
    const std::uint64_t busy =
        obs::Global()
            .GetCounter("net.parallel.busy_ns.w" + std::to_string(w))
            .value();
    sum += busy;
    longest = std::max(longest, busy);
  }
  return longest > 0 ? double(sum) / double(longest) : 0.0;
}

void FabricSweep(const Trace& trace, double min_time,
                 const std::string& out_path) {
  struct Fabric {
    const char* name;
    std::size_t leaves, spines;
  };
  // 64 switches (48 leaves x 16 spines) is the headline point; the smaller
  // fabrics show where the horizon overhead starts paying for itself.
  const std::vector<Fabric> fabrics = {
      {"leafspine-4x3", 4, 3},
      {"leafspine-8x8", 8, 8},
      {"leafspine-48x16", 48, 16},
  };
  std::vector<bench::BenchThroughputRow> rows;
  std::printf("%16s %8s %7s %9s %8s %10s %6s\n", "fabric", "threads",
              "rounds", "agg-pkts", "ns/pkt", "Mpps", "cp-x");
  for (const Fabric& fab : fabrics) {
    TopologyConfig topo;
    topo.kind = TopologyKind::kLeafSpine;
    topo.leaves = fab.leaves;
    topo.spines = fab.spines;
    for (const std::size_t threads : {0u, 1u, 2u, 4u, 8u}) {
      NetworkRunConfig cfg = BaseConfig(topo);
      cfg.capture_counts = false;  // bench the engine, not the table copies
      cfg.parallel.threads = threads;
      obs::Global().Reset();
      double wall_ns = 0;
      std::uint64_t agg_pkts = 0;  // every packet at every switch it crossed
      int rounds = 0;
      while (rounds < 1 || wall_ns < min_time * 1e9) {
        const auto t0 = std::chrono::steady_clock::now();
        const NetworkRunResult net = RunOmniWindowFabric(
            trace,
            [](std::size_t) { return std::make_shared<ExactCountApp>(); },
            cfg);
        wall_ns += double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
        agg_pkts = 0;
        for (const SwitchRun& sw : net.per_switch) {
          agg_pkts += sw.data_plane.packets_measured;
        }
        ++rounds;
      }
      bench::BenchThroughputRow row;
      row.workload = fab.name;
      row.items = agg_pkts;
      row.rounds = rounds;
      row.ns_per_item = wall_ns / (double(agg_pkts) * rounds);
      row.items_per_sec = 1e9 / row.ns_per_item;
      row.threads = int(threads);
      if (threads > 0) {
        row.critical_path_speedup = CriticalPathSpeedup(threads);
      }
      std::printf("%16s %8zu %7d %9llu %8.1f %10.3f %6.2f\n", fab.name,
                  threads, rounds, (unsigned long long)agg_pkts,
                  row.ns_per_item, row.items_per_sec / 1e6,
                  row.critical_path_speedup);
      rows.push_back(std::move(row));
    }
  }
  char trace_desc[160];
  std::snprintf(trace_desc, sizeof(trace_desc),
                "{\"name\": \"MakeTrace(1101)\", \"packets\": %zu, "
                "\"duration_ms\": 400}",
                trace.packets.size());
  if (bench::WriteThroughputJson(out_path, "fabric_parallel", trace_desc,
                                 min_time, "packet", rows)) {
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::printf("FAILED to write %s\n", out_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double min_time = bench::MinTimeFromArgs(argc, argv, 0.3);
  const std::string out_path =
      bench::OutPathFromArgs(argc, argv, "BENCH_fabric.json");
  const Trace trace = MakeTrace(1101);
  std::printf("Exp#11: OmniWindow on arbitrary fabrics "
              "(%zu packets, 400 ms, per-switch controllers)\n\n",
              trace.packets.size());
  std::printf("-- Part A: fabric scale sweep (exact per-flow app) --\n");
  ScaleSweep(trace);
  std::printf("\n-- Part B: leaf-spine 2x2, 5%% drop armed on spine2->leaf1, "
              "localization by flow conservation --\n");
  LocalizationSweep(trace);
  std::printf("\n(The exact instrument charges every drop to the armed link; "
              "shrinking hash tables add collision phantoms — the residual "
              "error is the app's, not the window mechanism's.)\n");
  std::printf("\n-- Part C: parallel engine, thread x fabric sweep "
              "(conservative lookahead, bit-identical windows) --\n");
  FabricSweep(trace, min_time, out_path);
  return 0;
}
