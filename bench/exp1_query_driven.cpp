// Exp#1 (Figure 7): query-driven telemetry accuracy.
//
// Runs the seven Sonata-style anomaly-detection queries Q1–Q7 under the six
// window mechanisms (ITW, ISW, TW1, TW2, OTW, OSW) and prints per-query
// precision and recall against the ideal sliding window, reproducing the
// bar groups of Figure 7. Expected shape: ITW recall < ISW (boundary
// bursts); TW1 recall < TW2 (C&R blackout); OTW ~ ITW and OSW ~ ISW within
// a few percent, at a quarter of the per-window memory.
#include <cstdio>

#include "bench/harness.h"

int main() {
  using namespace ow;
  using namespace ow::bench;

  const Trace trace = MakeEvalTrace(/*seed=*/1001);
  EvalParams params;
  std::printf("Exp#1: query-driven telemetry (trace: %zu packets)\n",
              trace.packets.size());
  std::printf("ground truth: ideal sliding window (500 ms / 100 ms)\n\n");

  const Mechanism mechs[] = {Mechanism::kItw, Mechanism::kTw1,
                             Mechanism::kTw2, Mechanism::kOtw,
                             Mechanism::kIsw, Mechanism::kOsw};

  std::printf("%-22s", "query");
  for (const auto m : mechs) std::printf("  %5s-P %5s-R", MechanismName(m),
                                         MechanismName(m));
  std::printf("\n");

  double avg_p[6] = {0}, avg_r[6] = {0};
  const auto queries = StandardQueries();
  for (const QueryDef& def : queries) {
    std::printf("%-22s", def.name.c_str());
    int i = 0;
    for (const auto m : mechs) {
      const PrecisionRecall pr = ScoreQueryMechanism(m, def, trace, params);
      std::printf("  %7.3f %7.3f", pr.precision, pr.recall);
      avg_p[i] += pr.precision;
      avg_r[i] += pr.recall;
      ++i;
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("%-22s", "average");
  for (int i = 0; i < 6; ++i) {
    std::printf("  %7.3f %7.3f", avg_p[i] / double(queries.size()),
                avg_r[i] / double(queries.size()));
  }
  std::printf("\n");
  return 0;
}
