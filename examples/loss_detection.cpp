// Network-wide packet-loss detection under the consistency model (the
// Exp#9 scenario).
//
// Two switches run LossRadar meters on the link between them. With
// OmniWindow's Lamport-style sub-window embedding, both meters bin every
// packet into the SAME sub-window, so the IBF difference decodes exactly
// the packets the lossy link dropped. The example also runs the same setup
// with skewed local clocks to show the phantom losses that appear without
// the consistency model.
#include <cstdio>
#include <map>
#include <memory>
#include <set>

#include "src/net/network.h"
#include "src/telemetry/loss_radar.h"
#include "src/trace/generator.h"

namespace {

using namespace ow;

constexpr Nanos kSubWindow = 50 * kMilli;

/// Minimal LossRadar meter program: per-sub-window IBF instances keyed by
/// either the embedded sub-window number (consistent mode) or the local
/// clock (baseline mode).
class MeterProgram : public SwitchProgram {
 public:
  MeterProgram(bool first_hop, bool use_embedded, Nanos clock_skew)
      : first_hop_(first_hop),
        use_embedded_(use_embedded),
        skew_(clock_skew) {}

  void Process(Packet& p, Nanos now, PacketSource, PipelineActions&) override {
    SubWindowNum sw;
    if (use_embedded_) {
      if (!p.ow.present) {
        p.ow.present = true;
        p.ow.subwindow_num = SubWindowNum((now + skew_) / kSubWindow);
      }
      sw = p.ow.subwindow_num;
    } else {
      sw = SubWindowNum((now + skew_) / kSubWindow);
    }
    (void)first_hop_;
    auto [it, inserted] = meters_.try_emplace(sw, 4096);
    it->second.Insert({p.Key(FlowKeyKind::kFiveTuple), p.seq});
  }

  std::map<SubWindowNum, LossRadar> meters_;

 private:
  bool first_hop_;
  bool use_embedded_;
  Nanos skew_;
};

std::size_t RunScenario(bool consistent, Nanos skew, std::size_t* truth_out) {
  TraceConfig tc;
  tc.seed = 5;
  tc.duration = kSecond;
  tc.packets_per_sec = 40'000;
  tc.num_flows = 4'000;
  TraceGenerator gen(tc);
  Trace trace = gen.GenerateBackground();

  Network net;
  Switch* up = net.AddSwitch();
  Switch* down = net.AddSwitch();
  auto prog_up = std::make_shared<MeterProgram>(true, consistent, 0);
  auto prog_down = std::make_shared<MeterProgram>(false, consistent, skew);
  up->SetProgram(prog_up);
  down->SetProgram(prog_down);
  Link* link = net.Connect(up, down,
                           {.latency = 20 * kMicro, .jitter = 10 * kMicro,
                            .loss_rate = 0.002});
  for (const Packet& p : trace.packets) up->EnqueueFromWire(p, p.ts);
  net.RunUntilQuiescent(10 * kSecond);
  *truth_out = link->dropped();

  // Decode per sub-window and count reported losses.
  std::size_t reported = 0;
  for (auto& [sw, meter] : prog_up->meters_) {
    auto it = prog_down->meters_.find(sw);
    LossRadar diff = meter;
    if (it != prog_down->meters_.end()) diff.Subtract(it->second);
    bool clean = false;
    reported += diff.Decode(clean).size();
  }
  return reported;
}

}  // namespace

int main() {
  std::size_t truth = 0;
  const std::size_t consistent = RunScenario(true, 0, &truth);
  std::printf("OmniWindow consistency: %zu losses reported, %zu actual\n",
              consistent, truth);
  for (const Nanos skew : {64 * kMicro, 256 * kMicro}) {
    std::size_t t2 = 0;
    const std::size_t skewed = RunScenario(false, skew, &t2);
    std::printf("local clocks (skew %lld us): %zu losses reported, %zu "
                "actual (phantoms: %zu)\n",
                (long long)(skew / kMicro), skewed, t2,
                skewed > t2 ? skewed - t2 : 0);
  }
  return 0;
}
