// Anomaly detection with query-driven telemetry (the Exp#1 scenario).
//
// Runs the seven Sonata-style queries (Q1–Q7) over an attack-laden trace
// through OmniWindow tumbling windows and reports per-query precision and
// recall against the ideal offline computation.
#include <cstdio>

#include "src/core/runner.h"
#include "src/telemetry/baselines.h"
#include "src/telemetry/query.h"
#include "src/trace/generator.h"

int main() {
  using namespace ow;

  TraceConfig tc;
  tc.seed = 2024;
  tc.duration = 2 * kSecond;
  tc.packets_per_sec = 60'000;
  tc.num_flows = 8'000;
  TraceGenerator gen(tc);
  const Trace trace = gen.GenerateEvaluationTrace();
  std::printf("trace: %zu packets, %zu injected anomalies\n\n",
              trace.packets.size(), gen.injected().size());

  WindowSpec spec;
  spec.type = WindowType::kTumbling;
  spec.window_size = 500 * kMilli;
  spec.subwindow_size = 100 * kMilli;

  std::printf("%-22s %9s %9s %9s\n", "query", "precision", "recall",
              "windows");
  for (const QueryDef& def : StandardQueries()) {
    auto app = std::make_shared<QueryAdapter>(def, 1 << 14);
    const RunResult result = RunOmniWindow(
        trace, app, RunConfig::Make(spec),
        [&](TableView table) { return app->Detect(table); });

    // Ideal tumbling windows as ground truth.
    const auto truth = RunIdealTumbling(def, trace, spec.window_size);
    std::vector<BaselineWindowResult> got;
    for (const auto& w : result.windows) {
      got.push_back({Nanos(w.span.first) * spec.subwindow_size,
                     Nanos(w.span.last + 1) * spec.subwindow_size,
                     w.detected});
    }
    const PrecisionRecall pr = WindowedPrecisionRecall(got, truth);
    std::printf("%-22s %9.3f %9.3f %9zu\n", def.name.c_str(), pr.precision,
                pr.recall, result.windows.size());
  }
  return 0;
}
