// Network-wide loss localization on a leaf-spine fabric.
//
// A 2x2 leaf-spine fabric (leaf 0 ingress, ECMP over both spines, egress
// leaf 1) runs one OmniWindow deployment per switch: the ingress leaf stamps
// sub-window numbers, every other switch follows the embedded numbers, so
// all four per-switch window tables describe the SAME packet population.
// One fabric link is silently dropping packets. The controller-side query
// LocalizeFlowLoss walks each flow's (deterministic) ECMP path and charges
// every per-link count deficit to the link it happened on — naming the
// faulty link from the telemetry alone, without touching the switches.
#include <cstdio>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/network_runner.h"
#include "src/telemetry/exact_count.h"
#include "src/telemetry/network_queries.h"
#include "src/trace/generator.h"

using namespace ow;

int main() {
  // 400 ms of background traffic, 2,000 flows.
  TraceConfig tc;
  tc.seed = 11;
  tc.duration = 400 * kMilli;
  tc.packets_per_sec = 20'000;
  tc.num_flows = 2'000;
  TraceGenerator gen(tc);
  const Trace trace = gen.GenerateBackground();

  // 100 ms tumbling windows over 50 ms sub-windows on a 2x2 leaf-spine.
  WindowSpec spec;
  spec.type = WindowType::kTumbling;
  spec.window_size = 100 * kMilli;
  spec.subwindow_size = 50 * kMilli;
  spec.slide = spec.window_size;
  NetworkRunConfig cfg;
  cfg.base = RunConfig::Make(spec);
  cfg.base.controller.kv_capacity = 1 << 16;
  cfg.topology.kind = TopologyKind::kLeafSpine;
  cfg.topology.leaves = 2;
  cfg.topology.spines = 2;
  cfg.capture_counts = true;  // keep each window's flow-count table
  cfg.link.latency = 20 * kMicro;
  cfg.link.jitter = 0;

  // The fault: 6% silent drops on fabric link 2 (spine 2 -> egress leaf 1).
  cfg.base.fault.inner_link.drop_rate = 0.06;
  cfg.fault_link_index = 2;

  const NetworkRunResult net = RunOmniWindowFabric(
      trace, [](std::size_t) { return std::make_shared<ExactCountApp>(); },
      cfg);

  // Localize per consistent window: gather the four switches' tables for
  // the same span and difference them along each flow's path.
  const NextHopFn next_hop = MakeTopologyNextHop(cfg.topology);
  std::map<std::pair<int, int>, std::uint64_t> inferred;
  std::size_t windows = 0;
  for (const auto& [span, counts0] : net.per_switch[0].counts) {
    std::vector<FlowCounts> per_switch{counts0};
    bool complete = true;
    for (std::size_t i = 1; i < net.per_switch.size(); ++i) {
      const auto it = net.per_switch[i].counts.find(span);
      if (it == net.per_switch[i].counts.end()) {
        complete = false;
        break;
      }
      per_switch.push_back(it->second);
    }
    if (!complete) continue;
    ++windows;
    for (const LinkLossReport& link : LocalizeFlowLoss(per_switch, next_hop)) {
      inferred[{link.from, link.to}] += link.lost();
    }
  }

  std::printf("leaf-spine 2x2, %zu packets, %zu consistent windows\n\n",
              trace.packets.size(), windows);
  std::printf("%12s %12s %12s %10s\n", "link", "transmitted", "true drops",
              "inferred");
  for (const FabricLinkStats& link : net.links) {
    const auto it = inferred.find({link.from, link.to});
    std::printf("   sw%d -> sw%d %12llu %12llu %10llu%s\n", link.from, link.to,
                (unsigned long long)link.transmitted,
                (unsigned long long)link.dropped,
                (unsigned long long)(it == inferred.end() ? 0 : it->second),
                link.dropped ? "   <- faulty" : "");
  }
  std::printf("\n(Inferred loss comes from the window tables alone; the true "
              "drop column is simulator ground truth.)\n");
  return 0;
}
