// In-application traffic monitoring with user-defined window signals
// (the Exp#3 case study).
//
// Simulates a parameter-server training job whose packets embed the current
// iteration number. OmniWindow turns each iteration into its own window and
// the switch records per-worker iteration times, which this example prints
// against ground truth. The stepwise drop in iteration time as the gradient
// compression ratio doubles is clearly visible.
#include <cstdio>
#include <map>

#include "src/core/runner.h"
#include "src/dml/dml.h"
#include "src/dml/iteration_app.h"

int main() {
  using namespace ow;

  DmlConfig cfg;
  cfg.workers = 3;
  cfg.iterations = 64;
  cfg.gradient_bytes = 8 << 20;
  DmlWorkload workload(cfg);
  const Trace trace = workload.Generate();
  std::printf("training trace: %zu packets over %zu iterations\n\n",
              trace.packets.size(), cfg.iterations);

  auto app = std::make_shared<IterationTimeApp>(4096);
  WindowSpec spec;
  spec.type = WindowType::kUserDefined;
  spec.window_size = spec.subwindow_size = 100 * kMilli;  // W = 1

  RunConfig rc = RunConfig::Make(spec);
  rc.data_plane.signal.kind = SignalKind::kUserDefined;
  rc.controller.grace_period = 100 * kMicro;

  Switch sw(0, rc.switch_timings);
  auto program = std::make_shared<OmniWindowProgram>(rc.data_plane, app);
  sw.SetProgram(program);
  OmniWindowController controller(rc.controller, app->merge_kind());
  controller.AttachSwitch(&sw);

  std::vector<std::map<std::uint32_t, Nanos>> per_iter(cfg.iterations);
  std::size_t window_index = 0;
  controller.SetWindowHandler([&](const WindowResult& w) {
    if (window_index >= per_iter.size()) return;
    w.table->ForEach([&](const KvSlot& slot) {
      const Nanos dur = Nanos(slot.attrs[1]) - Nanos(slot.attrs[0]);
      per_iter[window_index][slot.key.src_ip()] = dur;
    });
    ++window_index;
  });

  for (const Packet& p : trace.packets) sw.EnqueueFromWire(p, p.ts);
  Packet fin;
  fin.iteration = std::uint32_t(cfg.iterations);
  fin.ts = trace.Duration() + kMilli;
  sw.EnqueueFromWire(fin, fin.ts);
  sw.RunUntilIdle(trace.Duration() + 10 * kSecond);
  controller.Flush(trace.Duration() + 10 * kSecond);

  std::printf("%5s %12s %14s %14s\n", "iter", "compression",
              "measured(ms)", "truth(ms)");
  const auto& truth = workload.truth();
  for (std::size_t it = 0; it < cfg.iterations; it += 4) {
    double measured = 0;
    int n = 0;
    for (const auto& [worker, dur] : per_iter[it]) {
      measured += double(dur);
      ++n;
    }
    double expected = 0;
    for (int w = 0; w < cfg.workers; ++w) {
      expected += double(truth.iteration_times[std::size_t(w)][it]);
    }
    std::printf("%5zu %12.0f %14.3f %14.3f\n", it,
                truth.compression_ratio[it],
                n ? measured / n / double(kMilli) : 0.0,
                expected / cfg.workers / double(kMilli));
  }
  return 0;
}
