// Variable window sizes from one sub-window stream (requirement G1).
//
// The same 100 ms sub-windows are merged by the controller into 500 ms,
// 1 s and 2 s tumbling windows WITHOUT re-provisioning the data plane —
// the property Exp#10 builds on. The example runs the three window sizes
// over the same trace and shows the per-window heavy-hitter counts, plus a
// session-window run driven by traffic gaps.
#include <cstdio>

#include "src/core/runner.h"
#include "src/telemetry/query.h"
#include "src/trace/generator.h"

int main() {
  using namespace ow;

  TraceConfig tc;
  tc.seed = 77;
  tc.duration = 4 * kSecond;
  tc.packets_per_sec = 30'000;
  tc.num_flows = 5'000;
  TraceGenerator gen(tc);
  Trace trace = gen.GenerateBackground();
  gen.InjectDdos(trace, kSecond, 800 * kMilli, 400);
  trace.SortByTime();

  QueryDef def = StandardQuery(4);  // DDoS victim detection

  for (const Nanos window : {500 * kMilli, 1 * kSecond, 2 * kSecond}) {
    WindowSpec spec;
    spec.type = WindowType::kTumbling;
    spec.window_size = window;
    spec.subwindow_size = 100 * kMilli;  // unchanged across sizes

    auto app = std::make_shared<QueryAdapter>(def, 1 << 14);
    const RunResult result = RunOmniWindow(
        trace, app, RunConfig::Make(spec),
        [&](TableView table) { return app->Detect(table); });

    std::printf("tumbling %4lld ms: %2zu windows, detections per window:",
                (long long)(window / kMilli), result.windows.size());
    for (const auto& w : result.windows) {
      std::printf(" %zu", w.detected.size());
    }
    std::printf("\n");
  }

  // Variable spans on demand (G1): retain sub-window history and re-merge
  // an arbitrary range — e.g. the whole lifetime of a suspicious flow —
  // without touching the data plane.
  {
    auto app = std::make_shared<QueryAdapter>(def, 1 << 14);
    WindowSpec spec;
    spec.type = WindowType::kTumbling;
    spec.window_size = 500 * kMilli;
    spec.subwindow_size = 100 * kMilli;
    RunConfig rc = RunConfig::Make(spec);
    rc.controller.retain_subwindows = 64;  // keep history for ad-hoc spans

    Switch sw(0, rc.switch_timings);
    auto program = std::make_shared<OmniWindowProgram>(rc.data_plane, app);
    sw.SetProgram(program);
    OmniWindowController controller(rc.controller, app->merge_kind());
    controller.AttachSwitch(&sw);
    controller.SetWindowHandler([](const WindowResult&) {});
    for (const Packet& p : trace.packets) sw.EnqueueFromWire(p, p.ts);
    Packet sentinel;
    sentinel.ts = trace.Duration() + 100 * kMilli;
    sw.EnqueueFromWire(sentinel, sentinel.ts);
    sw.RunUntilIdle(trace.Duration() + 10 * kSecond);
    controller.Flush(trace.Duration() + 10 * kSecond);

    const auto span = controller.RetainedSpan();
    if (span) {
      std::printf("\nretained sub-windows: [%u, %u] — querying ad-hoc "
                  "spans:\n", span->first, span->last);
      for (const SubWindowSpan q : {SubWindowSpan{8, 12},
                                    SubWindowSpan{5, 24},
                                    SubWindowSpan{0, span->last}}) {
        KeyValueTable merged(1 << 14);
        if (!controller.QueryRange(q, merged)) continue;
        const FlowSet hits = app->Detect(merged);
        std::printf("  span [%2u..%2u] (%lld ms): %zu detections\n", q.first,
                    q.last,
                    (long long)(Nanos(q.count()) * spec.subwindow_size /
                                kMilli),
                    hits.size());
      }
    }
  }

  // Session windows: bursts separated by idle gaps become separate windows.
  Trace bursty;
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 400; ++i) {
      Packet p;
      p.ft = {std::uint32_t(100 + i % 50), 9, 1000, 80, 17};
      p.ts = Nanos(burst) * 800 * kMilli + Nanos(i) * 100 * kMicro;
      bursty.packets.push_back(p);
    }
  }
  bursty.SortByTime();

  QueryDef count_all;
  count_all.name = "session_volume";
  count_all.key_kind = FlowKeyKind::kDstIp;
  count_all.aggregate = QueryAggregate::kCount;
  count_all.threshold = 1;
  auto app = std::make_shared<QueryAdapter>(count_all, 1 << 10);

  WindowSpec spec;
  spec.type = WindowType::kSession;
  spec.window_size = spec.subwindow_size = 100 * kMilli;  // W = 1
  RunConfig rc = RunConfig::Make(spec);
  rc.data_plane.signal.kind = SignalKind::kSession;
  rc.data_plane.signal.session_gap = 300 * kMilli;

  const RunResult sessions = RunOmniWindow(
      bursty, app, rc,
      [&](TableView table) { return app->Detect(table); });
  std::printf("session windows detected: %zu (expected ~4 bursts)\n",
              sessions.windows.size());
  return 0;
}
