// Per-flow accounting with FlowRadar — the §8 no-AFR integration.
//
// FlowRadar's encoded flowset cannot be queried per flow in the data plane;
// OmniWindow migrates its raw cells to the controller every sub-window,
// where they are DECODED into exact per-flow packet counts and then merged
// into windows like any other AFRs. This example runs it end to end and
// compares the decoded window counts against ground truth.
#include <cstdio>
#include <map>
#include <unordered_map>

#include "src/core/runner.h"
#include "src/telemetry/flow_radar.h"
#include "src/trace/generator.h"

int main() {
  using namespace ow;

  TraceConfig tc;
  tc.seed = 11;
  tc.duration = kSecond;
  tc.packets_per_sec = 15'000;
  tc.num_flows = 1'200;  // within FlowRadar's decodable load
  TraceGenerator gen(tc);
  const Trace trace = gen.GenerateBackground();
  std::printf("trace: %zu packets, %zu flows\n", trace.packets.size(),
              tc.num_flows);

  auto app = std::make_shared<FlowRadarApp>(/*k=*/3, /*cells=*/4'096);
  WindowSpec spec;
  spec.type = WindowType::kTumbling;
  spec.window_size = 200 * kMilli;
  spec.subwindow_size = 100 * kMilli;
  RunConfig cfg = RunConfig::Make(spec);

  Switch sw(0, cfg.switch_timings);
  auto program = std::make_shared<OmniWindowProgram>(cfg.data_plane, app);
  sw.SetProgram(program);
  OmniWindowController controller(cfg.controller, app->merge_kind());
  controller.AttachSwitch(&sw);
  controller.SetSubWindowTransform(app->MakeTransform());

  std::vector<std::pair<SubWindowSpan, FlowCounts>> windows;
  controller.SetWindowHandler([&](const WindowResult& w) {
    FlowCounts counts;
    w.table->ForEach(
        [&](const KvSlot& slot) { counts[slot.key] = slot.attrs[0]; });
    windows.emplace_back(w.span, std::move(counts));
  });
  for (const Packet& p : trace.packets) sw.EnqueueFromWire(p, p.ts);
  Packet sentinel;
  sentinel.ts = trace.Duration() + 100 * kMilli;
  sw.EnqueueFromWire(sentinel, sentinel.ts);
  sw.RunUntilIdle(trace.Duration() + 10 * kSecond);
  controller.Flush(trace.Duration() + 10 * kSecond);

  std::printf("\n%8s %10s %12s %12s\n", "window", "flows", "exact-match%",
              "pkts-total");
  for (const auto& [span, counts] : windows) {
    // Ground truth for the same bounds.
    FlowCounts truth;
    const Nanos start = Nanos(span.first) * spec.subwindow_size;
    const Nanos end = Nanos(span.last + 1) * spec.subwindow_size;
    for (const Packet& p : trace.packets) {
      if (p.ts < start || p.ts >= end) continue;
      ++truth[p.Key(FlowKeyKind::kFiveTuple)];
    }
    std::size_t exact = 0;
    std::uint64_t total = 0;
    for (const auto& [key, v] : truth) {
      auto it = counts.find(key);
      if (it != counts.end() && it->second == v) ++exact;
      total += v;
    }
    std::printf("%3u..%-3u %10zu %11.1f%% %12llu\n", span.first, span.last,
                counts.size(),
                truth.empty() ? 100.0 : 100.0 * double(exact) / truth.size(),
                (unsigned long long)total);
  }
  return 0;
}
