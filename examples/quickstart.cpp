// Quickstart: sliding-window heavy-hitter detection with OmniWindow.
//
// Builds a synthetic trace with a burst that straddles a tumbling-window
// boundary (the paper's Figure 1 motivation), then runs the full OmniWindow
// pipeline — switch data plane, AFR collection, controller merging — with a
// 500 ms sliding window advancing 100 ms at a time. The boundary burst that
// a tumbling window would miss shows up in the sliding results.
#include <cstdio>

#include "src/core/runner.h"
#include "src/telemetry/query.h"
#include "src/trace/generator.h"

int main() {
  using namespace ow;

  // 1. Traffic: light background plus a burst centred on t = 500 ms.
  TraceConfig tc;
  tc.seed = 1;
  tc.duration = 1'500 * kMilli;
  tc.packets_per_sec = 20'000;
  TraceGenerator gen(tc);
  Trace trace = gen.GenerateBackground();
  gen.InjectBoundaryBurst(trace, 500 * kMilli, 60 * kMilli, 160);
  trace.SortByTime();
  const FlowKey burst = gen.injected()[0].victim_or_actor;

  // 2. Telemetry app: count packets per five-tuple, report flows > 120.
  QueryDef def;
  def.name = "heavy_hitter";
  def.key_kind = FlowKeyKind::kFiveTuple;
  def.aggregate = QueryAggregate::kCount;
  def.threshold = 120;
  auto app = std::make_shared<QueryAdapter>(def, 1 << 14);

  // 3. Window mechanism: 500 ms sliding window, 100 ms slide, built from
  //    100 ms sub-windows.
  WindowSpec spec;
  spec.type = WindowType::kSliding;
  spec.window_size = 500 * kMilli;
  spec.slide = 100 * kMilli;
  spec.subwindow_size = 100 * kMilli;

  // 4. Run the full pipeline.
  const RunResult result = RunOmniWindow(
      trace, app, RunConfig::Make(spec),
      [&](TableView table) { return app->Detect(table); });

  std::printf("windows emitted: %zu\n", result.windows.size());
  std::printf("AFRs generated in the data plane: %llu\n",
              (unsigned long long)result.data_plane.afr_generated);
  for (const auto& w : result.windows) {
    if (w.detected.contains(burst)) {
      std::printf("window [sub %u..%u]: boundary burst DETECTED\n",
                  w.span.first, w.span.last);
    }
  }
  std::printf("burst flow %s across whole run: %s\n",
              burst.ToString().c_str(),
              result.AllDetected().contains(burst) ? "detected" : "missed");
  return result.AllDetected().contains(burst) ? 0 : 1;
}
