// Multiple telemetry apps on ONE switch pipeline.
//
// Exp#5 shows OmniWindow + one query using under half of a Tofino-class
// pipeline; this example deploys THREE telemetry apps side by side — a
// SYN-flood counter, a DDoS distinct-source query and an MV-Sketch heavy
// hitter — each with its own controller and merged windows, all fed by the
// same packets in a single pipeline pass.
#include <cstdio>
#include <memory>

#include "src/core/multi_app.h"
#include "src/core/runner.h"
#include "src/sketch/mv_sketch.h"
#include "src/telemetry/query_builder.h"
#include "src/telemetry/sketch_apps.h"
#include "src/trace/generator.h"

int main() {
  using namespace ow;

  TraceConfig tc;
  tc.seed = 123;
  tc.duration = 1'500 * kMilli;
  tc.packets_per_sec = 40'000;
  tc.num_flows = 5'000;
  TraceGenerator gen(tc);
  Trace trace = gen.GenerateBackground();
  gen.InjectSynFlood(trace, 200 * kMilli, 600 * kMilli, 500);
  gen.InjectDdos(trace, 400 * kMilli, 600 * kMilli, 400);
  gen.InjectBoundaryBurst(trace, 500 * kMilli, 50 * kMilli, 600);
  trace.SortByTime();
  std::printf("trace: %zu packets, 3 anomalies injected\n\n",
              trace.packets.size());

  auto syn_app = std::make_shared<QueryAdapter>(
      QueryBuilder("syn_flood")
          .Filter(predicates::Syn)
          .KeyBy(FlowKeyKind::kDstIp)
          .Count()
          .Threshold(150)
          .Build(),
      1 << 13);
  auto ddos_app = std::make_shared<QueryAdapter>(
      QueryBuilder("ddos")
          .KeyBy(FlowKeyKind::kDstIp)
          .Distinct(elements::SrcIp)
          .Threshold(150)
          .Build(),
      1 << 13);
  auto hh_app = std::make_shared<FrequencySketchApp>(
      "mv_heavy_hitter", FlowKeyKind::kFiveTuple, FrequencyValue::kPackets,
      [] { return std::make_unique<MvSketch>(4, 4096); });

  WindowSpec spec;
  spec.type = WindowType::kTumbling;
  spec.window_size = 500 * kMilli;
  spec.subwindow_size = 100 * kMilli;

  Switch sw(0);
  RunConfig base = RunConfig::Make(spec);
  MultiAppHarness harness(sw, base.data_plane,
                          {{syn_app, base.controller},
                           {ddos_app, base.controller},
                           {hh_app, base.controller}});

  std::size_t detections[3] = {0, 0, 0};
  harness.controller(0).SetWindowHandler([&](const WindowResult& w) {
    detections[0] += syn_app->Detect(*w.table).size();
  });
  harness.controller(1).SetWindowHandler([&](const WindowResult& w) {
    detections[1] += ddos_app->Detect(*w.table).size();
  });
  harness.controller(2).SetWindowHandler([&](const WindowResult& w) {
    std::size_t heavies = 0;
    w.table->ForEach([&](const KvSlot& slot) {
      if (slot.attrs[0] >= 400) ++heavies;
    });
    detections[2] += heavies;
  });

  for (const Packet& p : trace.packets) sw.EnqueueFromWire(p, p.ts);
  Packet sentinel;
  sentinel.ts = trace.Duration() + 100 * kMilli;
  sw.EnqueueFromWire(sentinel, sentinel.ts);
  const Nanos horizon = trace.Duration() + 10 * kSecond;
  sw.RunUntilIdle(horizon);
  while (!harness.FlushAll(horizon)) sw.RunUntilIdle(horizon);

  std::printf("app 0 (syn flood):    %zu window-detections\n", detections[0]);
  std::printf("app 1 (ddos):         %zu window-detections\n", detections[1]);
  std::printf("app 2 (heavy hitter): %zu window-detections\n", detections[2]);

  // The combined footprint still fits the pipeline.
  ResourceLedger ledger;
  harness.program().ChargeResources(ledger);
  const auto total = ledger.Total();
  std::printf("\ncombined pipeline usage: %zu stages, %zu KB SRAM, %d SALUs "
              "(budget: 12 stages, %d SALUs)\n",
              total.stages.size(), total.sram_bytes / 1024, total.salus,
              ResourceBudget{}.salus_per_stage * ResourceBudget{}.stages);
  std::printf("fits: %s\n", ledger.Fits(ResourceBudget{}) ? "yes" : "NO");
  return 0;
}
