// owtrace — trace generation and inspection CLI.
//
//   owtrace generate <out.owtr> [seed] [duration_ms] [pps] [flows]
//       Build the standard evaluation trace (background + all anomalies)
//       and save it in the binary trace format.
//   owtrace info <trace.owtr>
//       Print summary statistics: packets, duration, flows, top talkers,
//       protocol mix.
//   owtrace csv <trace.owtr> <out.csv> | owtrace fromcsv <in.csv> <out.owtr>
//       Convert between the binary format and CSV for external tooling.
//
// Every command accepts `--obs-out=<prefix>`: spans are traced for the
// command body and <prefix>.stats.json + <prefix>.trace.json are written at
// exit (docs/observability.md).
//
// Useful for caching a deterministic workload across bench runs and for
// feeding identical traffic to external tools.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/common/metrics.h"
#include "src/obs/obs.h"
#include "src/trace/generator.h"
#include "src/trace/trace_io.h"

namespace {

using namespace ow;

int Generate(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: owtrace generate <out.owtr> [seed] [duration_ms] "
                 "[pps] [flows]\n");
    return 2;
  }
  TraceConfig cfg;
  cfg.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
  cfg.duration =
      (argc > 4 ? std::strtoll(argv[4], nullptr, 10) : 2'000) * kMilli;
  cfg.packets_per_sec = argc > 5 ? std::strtod(argv[5], nullptr) : 60'000;
  cfg.num_flows =
      argc > 6 ? std::strtoull(argv[6], nullptr, 10) : std::size_t(8'000);

  TraceGenerator gen(cfg);
  const Trace trace = gen.GenerateEvaluationTrace();
  SaveTrace(trace, argv[2]);
  std::printf("wrote %zu packets (%lld ms, seed %llu) to %s\n",
              trace.packets.size(), (long long)(trace.Duration() / kMilli),
              (unsigned long long)cfg.seed, argv[2]);
  std::printf("injected anomalies:\n");
  for (const auto& a : gen.injected()) {
    std::printf("  %-18s %-32s [%lld ms, %lld ms) %zu pkts\n", a.kind.c_str(),
                a.victim_or_actor.ToString().c_str(),
                (long long)(a.start / kMilli), (long long)(a.end / kMilli),
                a.packets);
  }
  return 0;
}

int Info(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: owtrace info <trace.owtr>\n");
    return 2;
  }
  const Trace trace = LoadTrace(argv[2]);
  FlowCounts flows;
  std::unordered_set<std::uint32_t> srcs, dsts;
  std::uint64_t tcp = 0, udp = 0, bytes = 0;
  for (const Packet& p : trace.packets) {
    ++flows[p.Key(FlowKeyKind::kFiveTuple)];
    srcs.insert(p.ft.src_ip);
    dsts.insert(p.ft.dst_ip);
    bytes += p.size_bytes;
    (p.ft.proto == 6 ? tcp : udp) += 1;
  }
  std::printf("packets: %zu\n", trace.packets.size());
  std::printf("duration: %lld ms\n", (long long)(trace.Duration() / kMilli));
  std::printf("bytes: %llu (avg %.1f B/pkt)\n", (unsigned long long)bytes,
              trace.packets.empty()
                  ? 0.0
                  : double(bytes) / double(trace.packets.size()));
  std::printf("flows: %zu (%zu src hosts, %zu dst hosts)\n", flows.size(),
              srcs.size(), dsts.size());
  std::printf("protocol mix: %.1f%% tcp / %.1f%% udp-other\n",
              100.0 * double(tcp) / double(trace.packets.size()),
              100.0 * double(udp) / double(trace.packets.size()));

  std::vector<std::pair<FlowKey, std::uint64_t>> top(flows.begin(),
                                                     flows.end());
  std::partial_sort(
      top.begin(), top.begin() + std::min<std::size_t>(5, top.size()),
      top.end(), [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("top flows:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, top.size()); ++i) {
    std::printf("  %8llu pkts  %s\n", (unsigned long long)top[i].second,
                top[i].first.ToString().c_str());
  }
  return 0;
}

}  // namespace

namespace {

int Dispatch(int argc, char** argv) {
  if (std::strcmp(argv[1], "generate") == 0) {
    obs::ScopedSpan span(obs::Global(), "owtrace.generate");
    return Generate(argc, argv);
  }
  if (std::strcmp(argv[1], "info") == 0) {
    obs::ScopedSpan span(obs::Global(), "owtrace.info");
    return Info(argc, argv);
  }
  if (std::strcmp(argv[1], "csv") == 0) {
    if (argc < 4) {
      std::fprintf(stderr, "usage: owtrace csv <trace.owtr> <out.csv>\n");
      return 2;
    }
    obs::ScopedSpan span(obs::Global(), "owtrace.csv");
    ExportTraceCsv(LoadTrace(argv[2]), argv[3]);
    std::printf("wrote %s\n", argv[3]);
    return 0;
  }
  if (std::strcmp(argv[1], "fromcsv") == 0) {
    if (argc < 4) {
      std::fprintf(stderr,
                   "usage: owtrace fromcsv <in.csv> <out.owtr>\n");
      return 2;
    }
    obs::ScopedSpan span(obs::Global(), "owtrace.fromcsv");
    SaveTrace(ImportTraceCsv(argv[2]), argv[3]);
    std::printf("wrote %s\n", argv[3]);
    return 0;
  }
  std::fprintf(stderr, "owtrace: unknown command '%s'\n", argv[1]);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --obs-out=<prefix> (position-independent) before dispatching.
  std::string obs_out;
  int n = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kFlag = "--obs-out=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      obs_out = argv[i] + std::strlen(kFlag);
    } else {
      argv[n++] = argv[i];
    }
  }
  argc = n;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: owtrace <generate|info|csv|fromcsv> ... "
                 "[--obs-out=<prefix>]\n");
    return 2;
  }
  if (!obs_out.empty()) obs::Global().SetTracing(true);
  const int rc = Dispatch(argc, argv);
  if (!obs_out.empty() && !obs::Global().DumpToFiles(obs_out)) {
    std::fprintf(stderr, "failed to write obs dump to %s.*\n",
                 obs_out.c_str());
    return rc ? rc : 1;
  }
  return rc;
}
