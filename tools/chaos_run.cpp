// Chaos harness: sweep fault intensity across the fault matrix and assert
// window results are EXACT or EXPLICITLY FLAGGED — never silently divergent.
//
// For each (kind, seed, intensity) cell the harness runs the same
// deterministic trace twice: once fault-free (the baseline) and once under
// fault::MakeChaosPlan(kind, intensity, seed). Every emitted window must
// then either match the baseline window bit-for-bit (span + detections) or
// carry the partial flag the controller sets when a retry budget was
// exhausted. Intensity 0 is held to the stronger bar: bit-identical to the
// baseline, proving armed-but-idle fault plumbing perturbs nothing.
//
//   chaos_run [--seeds=3] [--intensities=0,0.05,0.15,0.3]
//             [--kinds=loss,reorder,rpc-timeout,rdma-fail,fabric-loss,
//                      kill-restore,failover]
//             [--out=chaos_report.json]
//
// The fabric-loss cell is special: it drops packets INSIDE a 2x2 leaf-spine
// fabric (one armed link, rotated per seed), so downstream windows are
// SUPPOSED to shrink. There the bar is structural (same window cadence and
// spans as the fault-free baseline, or flagged) plus localization: hop-by-hop
// flow conservation over the captured count tables must charge loss to the
// armed link and to no other. Every fabric cell additionally re-runs under
// the conservative-lookahead parallel engine (threads=4,
// docs/parallel_execution.md) and demands BIT-IDENTICAL windows, count
// tables and link ground truth against the sequential run — loss
// localization must not depend on how many workers drove the fabric.
//
// The kill-restore cell exercises the checkpoint machinery as a fault:
// drive the faulted leaf-spine fabric to a pseudo-random sub-window
// boundary, Snapshot() the complete state, rebuild a fresh identically
// configured session, Restore() and finish. The bar is the STRONGEST in
// the harness: the spliced run (pre-kill windows + post-restore windows)
// must be bit-identical to the uninterrupted run of the same cell —
// windows, detections, partial flags, count tables, link ground truth and
// delivery totals — at every intensity, including with fabric loss armed
// across the kill point, and again when the restored session is driven by
// the parallel engine. A kill/restore is not allowed to perturb anything,
// ever (snapshot_restore_test proves the unit version; this sweeps seeds
// x intensities end to end). It is a harness-level cell, not a
// fault::ChaosKind — the injected "fault" is the process death itself.
//
// The failover cell kills only the CONTROLLER PLANE: a standby that
// ingested controller-plane checkpoints every boundary (cadence 1) takes
// over against the live switches (FabricSession::FailOver) at a
// pseudo-random sub-window boundary and re-requests what its checkpoint
// predates. Swept across merge_threads {1,4} x fabric threads {0,4} and
// every intensity of the fabric-loss plan, the bar is the takeover
// contract: no reference window may go absent or silently divergent, and
// at intensity 0 the spliced stream must be fully exact (cadence 1 keeps
// the staleness inside the switch retransmission cache — zero windows
// lost). See docs/failover.md.
//
// Writes a JSON report (one row per cell) and exits non-zero on any
// unflagged divergence. CI runs this under ASan (the `chaos` job).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/network_runner.h"
#include "src/core/runner.h"
#include "src/failover/failover.h"
#include "src/fault/fault.h"
#include "src/obs/obs.h"
#include "src/switchsim/switch_os.h"
#include "src/telemetry/exact_count.h"
#include "src/telemetry/network_queries.h"
#include "src/telemetry/query.h"

namespace ow {
namespace {

struct Options {
  int seeds = 3;
  std::vector<double> intensities{0.0, 0.05, 0.15, 0.30};
  std::vector<fault::ChaosKind> kinds{
      fault::ChaosKind::kLoss, fault::ChaosKind::kReorder,
      fault::ChaosKind::kRpcTimeout, fault::ChaosKind::kRdmaFail,
      fault::ChaosKind::kFabricLoss};
  /// Harness-level cell (not a fault::ChaosKind): kill the run at a
  /// sub-window boundary, restore from the snapshot, demand bit-identity.
  bool kill_restore = true;
  /// Harness-level cell: kill the controller plane, take over from a
  /// standby's cadence-1 checkpoint against the live switches, demand
  /// exact-or-flagged with zero loss.
  bool failover = true;
  std::string out = "chaos_report.json";
};

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      parts.push_back(s.substr(pos));
      break;
    }
    parts.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return parts;
}

bool ParseArgs(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--seeds=")) {
      opt.seeds = std::atoi(v);
    } else if (const char* v = value("--intensities=")) {
      opt.intensities.clear();
      for (const std::string& p : SplitCsv(v)) {
        opt.intensities.push_back(std::atof(p.c_str()));
      }
    } else if (const char* v = value("--kinds=")) {
      opt.kinds.clear();
      opt.kill_restore = false;
      opt.failover = false;
      for (const std::string& p : SplitCsv(v)) {
        if (p == "kill-restore") {
          opt.kill_restore = true;
        } else if (p == "failover") {
          opt.failover = true;
        } else if (p == "loss") {
          opt.kinds.push_back(fault::ChaosKind::kLoss);
        } else if (p == "reorder") {
          opt.kinds.push_back(fault::ChaosKind::kReorder);
        } else if (p == "rpc-timeout") {
          opt.kinds.push_back(fault::ChaosKind::kRpcTimeout);
        } else if (p == "rdma-fail") {
          opt.kinds.push_back(fault::ChaosKind::kRdmaFail);
        } else if (p == "fabric-loss") {
          opt.kinds.push_back(fault::ChaosKind::kFabricLoss);
        } else {
          std::fprintf(stderr, "chaos_run: unknown kind '%s'\n", p.c_str());
          return false;
        }
      }
    } else if (const char* v = value("--out=")) {
      opt.out = v;
    } else {
      std::fprintf(stderr, "chaos_run: unknown argument '%s'\n", arg.c_str());
      return false;
    }
  }
  return opt.seeds > 0 && !opt.intensities.empty() &&
         (!opt.kinds.empty() || opt.kill_restore || opt.failover);
}

QueryDef CountDef() {
  QueryDef def;
  def.name = "count";
  def.key_kind = FlowKeyKind::kDstIp;
  def.aggregate = QueryAggregate::kCount;
  def.threshold = 8;
  return def;
}

/// 1 s of deterministic traffic: five steady flows plus a heavy hitter
/// (the lossy-collection regression trace), so every window has
/// non-trivial detections to diverge on.
Trace MakeLineTrace() {
  Trace trace;
  for (int ms = 0; ms < 1000; ++ms) {
    Packet p;
    p.ft = {1, std::uint32_t(ms % 5 + 1), 10, 20, 17};
    p.ts = Nanos(ms) * kMilli;
    trace.packets.push_back(p);
    if (ms % 2 == 0) {
      Packet hh;
      hh.ft = {2, 99, 10, 20, 17};
      hh.ts = Nanos(ms) * kMilli + kMicro;
      trace.packets.push_back(hh);
    }
  }
  trace.SortByTime();
  return trace;
}

/// RDMA trace: a few stable flows (they go hot and exercise the mirror
/// path) plus per-sub-window fresh keys (cold, exercising the faultable
/// append-buffer WRITEs).
Trace MakeRdmaTrace() {
  Trace trace;
  for (int ms = 0; ms < 1000; ++ms) {
    Packet p;
    p.ft = {1, std::uint32_t(ms % 3 + 1), 10, 20, 17};
    p.ts = Nanos(ms) * kMilli;
    trace.packets.push_back(p);
    // Fresh dst per 50 ms sub-window: always cold at collection time.
    Packet cold;
    cold.ft = {3, 1000u + std::uint32_t(ms / 50) * 16 + std::uint32_t(ms % 8),
               10, 20, 17};
    cold.ts = Nanos(ms) * kMilli + 2 * kMicro;
    trace.packets.push_back(cold);
    if (ms % 2 == 0) {
      Packet hh;
      hh.ft = {2, 99, 10, 20, 17};
      hh.ts = Nanos(ms) * kMilli + kMicro;
      trace.packets.push_back(hh);
    }
  }
  trace.SortByTime();
  return trace;
}

WindowSpec Spec() {
  WindowSpec spec;
  spec.type = WindowType::kTumbling;
  spec.window_size = 100 * kMilli;
  spec.slide = spec.window_size;
  spec.subwindow_size = 50 * kMilli;
  return spec;
}

/// The failover cell uses SLIDING windows wider (10 sub-windows) than the
/// switch retransmission cache (depth 8): every not-yet-delivered window
/// spans many sub-windows, so a takeover that mishandled re-collection
/// would surface as divergence instead of hiding behind already-delivered
/// tumbling windows.
WindowSpec FailoverSpec() {
  WindowSpec spec;
  spec.type = WindowType::kSliding;
  spec.window_size = 500 * kMilli;
  spec.subwindow_size = 50 * kMilli;
  spec.slide = 50 * kMilli;
  return spec;
}

/// Flat list of windows from a run, in emission order across switches.
struct Snapshot {
  struct Win {
    SubWindowSpan span;
    FlowSet detected;
    bool partial = false;
  };
  std::vector<Win> windows;
};

Snapshot SnapLine(const Trace& trace, const fault::FaultPlan& plan,
                  std::uint64_t seed) {
  obs::Global().Reset();
  NetworkRunConfig cfg;
  cfg.base = RunConfig::Make(Spec());
  cfg.base.fault = plan;
  cfg.num_switches = 2;
  cfg.report_link_seed = 777 + seed;
  cfg.link_seed = 555 + seed;

  std::vector<std::shared_ptr<QueryAdapter>> apps;
  const NetworkRunResult net = RunOmniWindowLine(
      trace,
      [&](std::size_t) {
        apps.push_back(std::make_shared<QueryAdapter>(CountDef(), 2048));
        return apps.back();
      },
      cfg, [&](TableView table) { return apps[0]->Detect(table); });

  Snapshot snap;
  for (const auto& sw : net.per_switch) {
    for (const auto& w : sw.windows) {
      snap.windows.push_back({w.span, w.detected, w.partial});
    }
  }
  if (std::getenv("CHAOS_DEBUG")) {
    for (std::size_t i = 0; i < net.per_switch.size(); ++i) {
      const auto& c = net.per_switch[i].controller;
      const auto& d = net.per_switch[i].data_plane;
      std::fprintf(stderr,
                   "SW%zu ctrl: fin=%llu forced=%llu afrs=%llu dup=%llu "
                   "retx=%llu partial_w=%llu | dp: afr_gen=%llu windows=%zu\n",
                   i, (unsigned long long)c.subwindows_finalized,
                   (unsigned long long)c.subwindows_force_finalized,
                   (unsigned long long)c.afrs_received,
                   (unsigned long long)c.duplicate_afrs,
                   (unsigned long long)c.retransmissions_requested,
                   (unsigned long long)c.windows_partial,
                   (unsigned long long)d.afr_generated,
                   net.per_switch[i].windows.size());
      std::fprintf(stderr,
                   "     dp: term=%llu overruns=%llu | ctrl: gaps=%llu "
                   "sw_degraded=%llu forced=%llu\n",
                   (unsigned long long)d.terminations,
                   (unsigned long long)d.collect_overruns,
                   (unsigned long long)c.spilled_keys_stored,
                   (unsigned long long)c.subwindows_degraded_by_switch,
                   (unsigned long long)c.subwindows_force_finalized);
      for (const auto& w : net.per_switch[i].windows) {
        std::fprintf(stderr, "  win [%llu,%llu] det=%zu partial=%d\n",
                     (unsigned long long)w.span.first,
                     (unsigned long long)w.span.last, w.detected.size(),
                     int(w.partial));
      }
    }
  }
  return snap;
}

Snapshot SnapRdma(const Trace& trace, const fault::FaultPlan& plan,
                  std::uint64_t seed) {
  obs::Global().Reset();
  RunConfig cfg = RunConfig::Make(Spec());
  cfg.data_plane.rdma = true;
  cfg.controller.rdma = true;
  cfg.fault = plan;
  cfg.fault.seed = plan.seed + seed;
  auto app = std::make_shared<QueryAdapter>(CountDef(), 1 << 14);
  const RunResult run = RunOmniWindow(
      trace, app, cfg, [&](TableView table) { return app->Detect(table); });
  Snapshot snap;
  for (const auto& w : run.windows) {
    snap.windows.push_back({w.span, w.detected, w.partial});
  }
  return snap;
}

/// Fabric detection rule over the exact per-flow tables: heavy hitters by
/// packet count. The fabric cells measure with ExactCountApp (five-tuple
/// keyed, the routing key) so the captured tables feed LocalizeFlowLoss
/// without hash-cell collision error — a collision present at one switch and
/// absent at another would read as phantom loss on an unarmed link and trip
/// the localization check spuriously.
constexpr std::uint64_t kFabricDetectThreshold = 8;

FlowSet FabricDetect(TableView table) {
  FlowSet out;
  table.ForEach([&](const KvSlot& slot) {
    if (slot.attrs[0] >= kFabricDetectThreshold) out.insert(slot.key);
  });
  return out;
}

TopologyConfig FabricTopology() {
  TopologyConfig topo;
  topo.kind = TopologyKind::kLeafSpine;
  topo.spines = 2;
  topo.leaves = 2;
  return topo;
}

/// Snapshot plus the full run result (count tables + per-link ground truth)
/// the localization check consumes.
struct FabricSnap {
  Snapshot snap;
  NetworkRunResult net;
};

NetworkRunConfig FabricCfg(const fault::FaultPlan& plan, std::uint64_t seed,
                           int armed_link, std::size_t threads) {
  NetworkRunConfig cfg;
  cfg.base = RunConfig::Make(Spec());
  cfg.base.fault = plan;
  cfg.base.controller.kv_capacity = 1 << 14;
  cfg.topology = FabricTopology();
  cfg.capture_counts = true;
  cfg.fault_link_index = armed_link;
  cfg.report_link_seed = 777 + seed;
  cfg.link_seed = 555 + seed;
  cfg.parallel.threads = threads;
  return cfg;
}

void Flatten(FabricSnap& out) {
  for (const auto& sw : out.net.per_switch) {
    for (const auto& w : sw.windows) {
      out.snap.windows.push_back({w.span, w.detected, w.partial});
    }
  }
}

FabricSnap SnapFabric(const Trace& trace, const fault::FaultPlan& plan,
                      std::uint64_t seed, int armed_link,
                      std::size_t threads = 0) {
  obs::Global().Reset();
  FabricSnap out;
  out.net = RunOmniWindowFabric(
      trace,
      [](std::size_t) { return std::make_shared<ExactCountApp>(); },
      FabricCfg(plan, seed, armed_link, threads),
      [](TableView table) { return FabricDetect(table); });
  Flatten(out);
  return out;
}

/// The kill-restore cell: drive the same faulted cell to `kill_t` (a
/// sub-window boundary), Snapshot(), rebuild a fresh identically
/// configured session, Restore(), finish it, and splice the killed
/// session's pre-kill window stream back in front (FabricSession's
/// stream-vs-counter contract). The caller compares the splice against the
/// uninterrupted run with CompareEngines — full bit-identity, the
/// strongest bar in this harness.
FabricSnap SnapFabricKillRestore(const Trace& trace,
                                 const fault::FaultPlan& plan,
                                 std::uint64_t seed, int armed_link,
                                 Nanos kill_t, std::size_t threads = 0) {
  obs::Global().Reset();
  const NetworkRunConfig cfg = FabricCfg(plan, seed, armed_link, threads);
  const auto make_app = [](std::size_t) {
    return std::make_shared<ExactCountApp>();
  };
  const auto detect = [](TableView table) { return FabricDetect(table); };

  FabricSession killed(trace, make_app, cfg, detect);
  killed.DriveUntil(kill_t);
  // Round-trip through the durable file form, not just the in-memory
  // buffer: this chaos class then also exercises the CRC framing and
  // untrusted-size decode paths under the sanitizer.
  const std::string ckpt = "chaos_kill_restore_" + std::to_string(seed) + "_" +
                           std::to_string(armed_link) + ".owsnap";
  killed.SnapshotToFile(ckpt, KvSnapshotMode::kAuto);
  const NetworkRunResult pre = killed.partial_result();

  FabricSession restored(trace, make_app, cfg, detect);
  restored.RestoreFromFile(ckpt);
  std::remove(ckpt.c_str());

  FabricSnap out;
  out.net = restored.Finish();
  for (std::size_t i = 0; i < out.net.per_switch.size(); ++i) {
    auto& dst = out.net.per_switch[i];
    const auto& src = pre.per_switch[i];
    dst.windows.insert(dst.windows.begin(), src.windows.begin(),
                       src.windows.end());
    dst.counts.insert(src.counts.begin(), src.counts.end());
  }
  Flatten(out);
  return out;
}

struct CellResult {
  std::string kind;
  std::uint64_t seed = 0;
  double intensity = 0.0;
  std::size_t windows_total = 0;
  std::size_t windows_exact = 0;
  std::size_t windows_flagged = 0;
  std::size_t divergent_unflagged = 0;
  /// Fabric cells only: mismatches between the sequential and the
  /// threads=4 parallel run of the SAME faulted cell (must be 0).
  std::size_t parallel_mismatch = 0;
  std::uint64_t injected_faults = 0;
  bool zero_must_match = false;
};

/// Bit-identity between the sequential and parallel engines on the SAME
/// faulted fabric cell: windows (spans, detections, partial flags),
/// captured count tables, per-link ground truth and the delivery/drop
/// totals must all match exactly. Returns the number of mismatches.
std::size_t CompareEngines(const FabricSnap& seq, const FabricSnap& par) {
  std::size_t bad = 0;
  if (seq.snap.windows.size() != par.snap.windows.size()) ++bad;
  const std::size_t nw =
      std::min(seq.snap.windows.size(), par.snap.windows.size());
  for (std::size_t i = 0; i < nw; ++i) {
    const auto& a = seq.snap.windows[i];
    const auto& b = par.snap.windows[i];
    if (a.span.first != b.span.first || a.span.last != b.span.last ||
        a.partial != b.partial || a.detected != b.detected) {
      ++bad;
    }
  }
  if (seq.net.per_switch.size() != par.net.per_switch.size()) {
    ++bad;
  } else {
    for (std::size_t i = 0; i < seq.net.per_switch.size(); ++i) {
      if (seq.net.per_switch[i].counts != par.net.per_switch[i].counts) ++bad;
    }
  }
  if (seq.net.links.size() != par.net.links.size()) {
    ++bad;
  } else {
    for (std::size_t i = 0; i < seq.net.links.size(); ++i) {
      const FabricLinkStats& a = seq.net.links[i];
      const FabricLinkStats& b = par.net.links[i];
      if (a.from != b.from || a.to != b.to || a.port != b.port ||
          a.transmitted != b.transmitted || a.dropped != b.dropped ||
          a.duplicates != b.duplicates) {
        ++bad;
      }
    }
  }
  if (seq.net.delivered != par.net.delivered ||
      seq.net.link_dropped != par.net.link_dropped ||
      seq.net.report_dropped != par.net.report_dropped) {
    ++bad;
  }
  return bad;
}

/// Compare a faulted snapshot against the fault-free baseline. At zero
/// intensity everything must be exact; above it, every window must be
/// exact or flagged partial.
void Compare(const Snapshot& base, const Snapshot& got, CellResult& cell) {
  cell.windows_total = got.windows.size();
  if (base.windows.size() != got.windows.size()) {
    // Window cadence is driven by sub-window triggers; a mismatch here is
    // itself an unflagged structural divergence.
    cell.divergent_unflagged +=
        std::max(base.windows.size(), got.windows.size()) -
        std::min(base.windows.size(), got.windows.size());
  }
  const std::size_t n = std::min(base.windows.size(), got.windows.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& b = base.windows[i];
    const auto& g = got.windows[i];
    const bool exact = b.span.first == g.span.first &&
                       b.span.last == g.span.last && b.detected == g.detected;
    if (exact && !g.partial) {
      ++cell.windows_exact;
    } else if (g.partial) {
      ++cell.windows_flagged;
      if (cell.zero_must_match) ++cell.divergent_unflagged;
    } else {
      ++cell.divergent_unflagged;
      if (std::getenv("CHAOS_DEBUG")) {
        std::fprintf(stderr,
                     "DIVERGE win=%zu base span=[%llu,%llu] |det|=%zu  "
                     "got span=[%llu,%llu] |det|=%zu partial=%d\n",
                     i, (unsigned long long)b.span.first,
                     (unsigned long long)b.span.last, b.detected.size(),
                     (unsigned long long)g.span.first,
                     (unsigned long long)g.span.last, g.detected.size(),
                     int(g.partial));
        for (const auto& k : b.detected) {
          if (!g.detected.count(k)) {
            std::fprintf(stderr, "  base-only dst=%u\n", k.dst_ip());
          }
        }
        for (const auto& k : g.detected) {
          if (!b.detected.count(k)) {
            std::fprintf(stderr, "  got-only dst=%u\n", k.dst_ip());
          }
        }
      }
    }
  }
}

/// Hop-by-hop localization over every window that all switches emitted
/// complete (present and not flagged partial). Returns the number of
/// violations: any unarmed link charged with loss, or the armed link's
/// actual drops going unlocalized with no window flagged.
std::size_t CheckFabricLocalization(const NetworkRunResult& net,
                                    const TopologyConfig& topo, int armed) {
  std::set<SubWindowNum> flagged;
  bool any_flagged = false;
  for (const auto& sw : net.per_switch) {
    for (const auto& w : sw.windows) {
      if (w.partial) {
        flagged.insert(w.span.first);
        any_flagged = true;
      }
    }
  }
  const NextHopFn next_hop = MakeTopologyNextHop(topo);
  std::map<std::pair<int, int>, std::uint64_t> inferred;
  for (const auto& [span, counts0] : net.per_switch[0].counts) {
    if (flagged.count(span)) continue;
    std::vector<FlowCounts> per_switch{counts0};
    bool complete = true;
    for (std::size_t i = 1; i < net.per_switch.size(); ++i) {
      auto it = net.per_switch[i].counts.find(span);
      if (it == net.per_switch[i].counts.end()) {
        complete = false;
        break;
      }
      per_switch.push_back(it->second);
    }
    if (!complete) continue;
    for (const LinkLossReport& link :
         LocalizeFlowLoss(per_switch, next_hop)) {
      inferred[{link.from, link.to}] += link.lost();
    }
  }

  const FabricLinkStats& truth = net.links[std::size_t(armed)];
  std::size_t violations = 0;
  std::uint64_t inferred_armed = 0;
  for (const auto& [edge, lost] : inferred) {
    if (edge.first == truth.from && edge.second == truth.to) {
      inferred_armed = lost;
    } else if (lost > 0) {
      ++violations;  // conservation broke on a link with no armed fault
    }
  }
  if (truth.dropped > 0 && inferred_armed == 0 && !any_flagged) {
    ++violations;  // real drops neither localized nor flagged
  }
  if (truth.dropped == 0 && inferred_armed > 0) {
    ++violations;  // phantom loss on the armed link
  }
  return violations;
}

/// Fabric-loss comparison: drops inside the fabric legitimately shrink
/// downstream counts, so detections may differ from the baseline. The bar is
/// structural — same window cadence and spans per emission slot, or flagged —
/// with correctness carried by CheckFabricLocalization. Intensity 0 keeps the
/// stronger bit-identical bar via the caller using Compare directly.
void CompareFabricSpans(const Snapshot& base, const Snapshot& got,
                        CellResult& cell) {
  cell.windows_total = got.windows.size();
  if (base.windows.size() != got.windows.size()) {
    cell.divergent_unflagged +=
        std::max(base.windows.size(), got.windows.size()) -
        std::min(base.windows.size(), got.windows.size());
  }
  const std::size_t n = std::min(base.windows.size(), got.windows.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto& b = base.windows[i];
    const auto& g = got.windows[i];
    const bool same_span =
        b.span.first == g.span.first && b.span.last == g.span.last;
    if (g.partial) {
      ++cell.windows_flagged;
    } else if (same_span) {
      ++cell.windows_exact;
    } else {
      ++cell.divergent_unflagged;
    }
  }
}

std::uint64_t SumFaultCounters() {
  obs::Registry& reg = obs::Global();
  return reg.GetCounter("fault.link.injected_drops").value() +
         reg.GetCounter("fault.link.duplicates").value() +
         reg.GetCounter("fault.link.reorders").value() +
         reg.GetCounter("fault.switch_os.rpc_timeouts").value() +
         reg.GetCounter("fault.switch_os.slow_ops").value() +
         reg.GetCounter("fault.rdma.dropped_writes").value() +
         reg.GetCounter("fault.rdma.partial_writes").value() +
         reg.GetCounter("fault.controller.merge_stalls").value();
}

/// Switch-OS micro-scenario: under injected RPC timeouts and slow bursts
/// the driver must return the same register contents, never finish early,
/// and be deterministic in the seed. Returns false on violation.
bool CheckSwitchOsFaults(double intensity, std::uint64_t seed,
                         std::uint64_t& injected) {
  RegisterArray clean("chaos", 4096, 8);
  RegisterArray faulted("chaos", 4096, 8);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    clean.ControlWrite(i, i * 2654435761u);
    faulted.ControlWrite(i, i * 2654435761u);
  }
  fault::SwitchOsFaultProfile profile;
  profile.timeout_rate = intensity;
  profile.slow_rate = intensity;

  SwitchOsDriver plain;
  std::vector<std::uint64_t> want;
  const Nanos t_plain = plain.ReadAll(clean, want, 0);

  auto run = [&](std::vector<std::uint64_t>& out) {
    SwitchOsDriver os;
    os.ArmFaults(profile, fault::RetryPolicy{}, seed);
    Nanos t = 0;
    for (int op = 0; op < 16; ++op) {
      out.clear();
      t = os.ReadAll(faulted, out, t);
    }
    injected = os.faults()->timeouts() + os.faults()->slow_ops();
    return t;
  };
  std::vector<std::uint64_t> got1, got2;
  const Nanos t1 = run(got1);
  const Nanos t2 = run(got2);
  if (got1 != want || got2 != want) return false;  // contents corrupted
  if (t1 != t2) return false;                      // nondeterministic
  if (intensity == 0.0 && t1 != 16 * t_plain) return false;
  return true;
}

}  // namespace
}  // namespace ow

int main(int argc, char** argv) {
  using namespace ow;
  Options opt;
  if (!ParseArgs(argc, argv, opt)) {
    std::fprintf(stderr,
                 "usage: chaos_run [--seeds=N] [--intensities=a,b,...]\n"
                 "                 [--kinds=loss,reorder,rpc-timeout,"
                 "rdma-fail,fabric-loss,kill-restore] [--out=FILE]\n");
    return 2;
  }

  const Trace line_trace = MakeLineTrace();
  const Trace rdma_trace = MakeRdmaTrace();
  std::vector<CellResult> cells;
  bool ok = true;

  for (const fault::ChaosKind kind : opt.kinds) {
    for (int s = 0; s < opt.seeds; ++s) {
      const std::uint64_t seed = 0xC0A5'0000u + std::uint64_t(s) * 7919;
      const bool rdma = kind == fault::ChaosKind::kRdmaFail;
      const bool fabric = kind == fault::ChaosKind::kFabricLoss;
      // Fabric cells rotate the armed link across seeds (2x2 leaf-spine has
      // 4 fabric links) so the sweep covers up-links and down-links.
      const int armed = int(s % 4);
      // Fault-free baseline for this seed (empty plan: nothing armed).
      const Snapshot base =
          fabric ? SnapFabric(line_trace, fault::FaultPlan{}, s, armed).snap
          : rdma ? SnapRdma(rdma_trace, fault::FaultPlan{}, s)
                 : SnapLine(line_trace, fault::FaultPlan{}, s);
      for (const double intensity : opt.intensities) {
        CellResult cell;
        cell.kind = fault::ChaosKindName(kind);
        cell.seed = seed;
        cell.intensity = intensity;
        cell.zero_must_match = intensity == 0.0;

        const fault::FaultPlan plan =
            fault::MakeChaosPlan(kind, intensity, seed);
        if (fabric) {
          const FabricSnap got = SnapFabric(line_trace, plan, s, armed);
          cell.injected_faults = SumFaultCounters();
          // The same faulted cell under the parallel engine: the fault
          // injectors hash (stream, seq) so identical wire ordering must
          // reproduce identical drops, and the windows downstream of them.
          const FabricSnap par =
              SnapFabric(line_trace, plan, s, armed, /*threads=*/4);
          cell.parallel_mismatch = CompareEngines(got, par);
          cell.divergent_unflagged += cell.parallel_mismatch;
          if (cell.zero_must_match) {
            // Armed-but-idle targeted fault plumbing and count capture must
            // be bit-identical to the baseline, detections included.
            Compare(base, got.snap, cell);
          } else {
            CompareFabricSpans(base, got.snap, cell);
          }
          cell.divergent_unflagged +=
              CheckFabricLocalization(got.net, FabricTopology(), armed);
          if (cell.divergent_unflagged > 0) ok = false;
          std::printf(
              "%-11s seed=%llu intensity=%.2f windows=%zu exact=%zu "
              "flagged=%zu divergent=%zu par-mismatch=%zu faults=%llu\n",
              cell.kind.c_str(), static_cast<unsigned long long>(cell.seed),
              cell.intensity, cell.windows_total, cell.windows_exact,
              cell.windows_flagged, cell.divergent_unflagged,
              cell.parallel_mismatch,
              static_cast<unsigned long long>(cell.injected_faults));
          cells.push_back(std::move(cell));
          continue;
        }
        const Snapshot got = rdma ? SnapRdma(rdma_trace, plan, s)
                                  : SnapLine(line_trace, plan, s);
        cell.injected_faults = SumFaultCounters();
        Compare(base, got, cell);

        if (kind == fault::ChaosKind::kRpcTimeout) {
          std::uint64_t os_injected = 0;
          if (!CheckSwitchOsFaults(intensity, seed, os_injected)) {
            ++cell.divergent_unflagged;
          }
          cell.injected_faults += os_injected;
        }

        if (cell.divergent_unflagged > 0) ok = false;
        std::printf(
            "%-11s seed=%llu intensity=%.2f windows=%zu exact=%zu "
            "flagged=%zu divergent=%zu faults=%llu\n",
            cell.kind.c_str(), static_cast<unsigned long long>(cell.seed),
            cell.intensity, cell.windows_total, cell.windows_exact,
            cell.windows_flagged, cell.divergent_unflagged,
            static_cast<unsigned long long>(cell.injected_faults));
        cells.push_back(std::move(cell));
      }
    }
  }

  // Kill-restore sweep: the fault is process death at a sub-window
  // boundary. Piggybacks on the fabric-loss plan so kills land both on a
  // clean fabric (intensity 0, armed-but-idle) and mid-recovery with real
  // loss in flight; the kill point rotates pseudo-randomly per cell.
  if (opt.kill_restore) {
    for (int s = 0; s < opt.seeds; ++s) {
      const std::uint64_t seed = 0xC0A5'0000u + std::uint64_t(s) * 7919;
      const int armed = int(s % 4);
      Rng kill_rng(seed ^ 0x5EEDD1Eull);
      for (const double intensity : opt.intensities) {
        CellResult cell;
        cell.kind = "kill-restore";
        cell.seed = seed;
        cell.intensity = intensity;
        cell.zero_must_match = true;  // bit-identity at EVERY intensity

        const fault::FaultPlan plan =
            fault::MakeChaosPlan(fault::ChaosKind::kFabricLoss, intensity,
                                 seed);
        // A sub-window boundary in [100 ms, 850 ms] of the 1 s trace
        // (50 ms sub-windows): early enough that real collection work is
        // still queued, late enough that windows already completed.
        const Nanos kill_t = Nanos(2 + kill_rng.Uniform(16)) * (50 * kMilli);

        const FabricSnap ref = SnapFabric(line_trace, plan, s, armed);
        const FabricSnap got =
            SnapFabricKillRestore(line_trace, plan, s, armed, kill_t);
        cell.injected_faults = SumFaultCounters();
        cell.divergent_unflagged += CompareEngines(ref, got);
        // The restored session must also resume bit-identically under the
        // parallel engine: a snapshot is engine-neutral state.
        const FabricSnap par = SnapFabricKillRestore(line_trace, plan, s,
                                                     armed, kill_t,
                                                     /*threads=*/4);
        cell.parallel_mismatch = CompareEngines(ref, par);
        cell.divergent_unflagged += cell.parallel_mismatch;

        cell.windows_total = got.snap.windows.size();
        for (const auto& w : got.snap.windows) {
          if (w.partial) {
            ++cell.windows_flagged;  // matched a flagged reference window
          } else {
            ++cell.windows_exact;
          }
        }
        if (cell.divergent_unflagged > 0) ok = false;
        std::printf(
            "%-11s seed=%llu intensity=%.2f kill=%lldms windows=%zu "
            "exact=%zu flagged=%zu divergent=%zu par-mismatch=%zu "
            "faults=%llu\n",
            cell.kind.c_str(), static_cast<unsigned long long>(cell.seed),
            cell.intensity, static_cast<long long>(kill_t / kMilli),
            cell.windows_total, cell.windows_exact, cell.windows_flagged,
            cell.divergent_unflagged, cell.parallel_mismatch,
            static_cast<unsigned long long>(cell.injected_faults));
        cells.push_back(std::move(cell));
      }
    }
  }

  // Failover sweep: the fault is CONTROLLER-PLANE death at a pseudo-random
  // sub-window boundary. A standby that checkpointed the controller plane
  // at every boundary (cadence 1) takes over against the live switches and
  // re-requests the in-flight sub-windows; with the staleness inside the
  // switch retransmission cache the spliced stream must be fully EXACT
  // against the uninterrupted run — at every intensity of the fabric-loss
  // plan (inner-link drops hit reference and takeover runs identically;
  // the report path is clean), and under every engine combination.
  if (opt.failover) {
    const auto make_app = [](std::size_t) {
      return std::make_shared<ExactCountApp>();
    };
    const auto detect = [](TableView table) { return FabricDetect(table); };
    for (int s = 0; s < opt.seeds; ++s) {
      const std::uint64_t seed = 0xC0A5'0000u + std::uint64_t(s) * 7919;
      const int armed = int(s % 4);
      Rng kill_rng(seed ^ 0xFA110ull);
      for (const double intensity : opt.intensities) {
        obs::Global().Reset();
        CellResult cell;
        cell.kind = "failover";
        cell.seed = seed;
        cell.intensity = intensity;
        cell.zero_must_match = true;  // exact at EVERY intensity, see above
        const fault::FaultPlan plan = fault::MakeChaosPlan(
            fault::ChaosKind::kFabricLoss, intensity, seed);
        // A boundary in [300 ms, 850 ms] of the 1 s trace (50 ms
        // sub-windows): sliding windows are already completing and enough
        // trace remains for the takeover to catch up in-band.
        const std::size_t kill = 6 + std::size_t(kill_rng.Uniform(12));

        for (const std::size_t merge : {std::size_t{1}, std::size_t{4}}) {
          for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
            NetworkRunConfig cfg;
            cfg.base = RunConfig::Make(FailoverSpec());
            cfg.base.fault = plan;
            cfg.base.controller.kv_capacity = 1 << 14;
            cfg.base.controller.merge_threads = merge;
            cfg.topology = FabricTopology();
            cfg.capture_counts = true;
            cfg.fault_link_index = armed;
            cfg.report_link_seed = 777 + std::uint64_t(s);
            cfg.link_seed = 555 + std::uint64_t(s);
            cfg.parallel.threads = threads;

            const NetworkRunResult ref =
                RunOmniWindowFabric(line_trace, make_app, cfg, detect);
            failover::FailoverConfig fcfg;
            fcfg.snapshot_cadence = 1;
            fcfg.kill_boundary = std::int64_t(kill);
            const failover::FailoverRunResult run = failover::RunWithFailover(
                line_trace, make_app, cfg, fcfg, detect);

            const failover::WindowComparison cmp =
                failover::CompareWindows(ref, run.spliced);
            cell.windows_total += cmp.windows_total;
            cell.windows_exact += cmp.exact;
            cell.windows_flagged += cmp.flagged;
            // The takeover contract: nothing absent, nothing silently
            // divergent — and at cadence 1 nothing even flagged.
            cell.divergent_unflagged += cmp.lost + cmp.divergent_unflagged +
                                        cmp.flagged +
                                        run.report.subwindows_lost;
            if (!run.report.caught_up) ++cell.divergent_unflagged;
          }
        }
        cell.injected_faults = SumFaultCounters();
        if (cell.divergent_unflagged > 0) ok = false;
        std::printf(
            "%-11s seed=%llu intensity=%.2f kill=%zums windows=%zu "
            "exact=%zu flagged=%zu divergent=%zu faults=%llu\n",
            cell.kind.c_str(), static_cast<unsigned long long>(cell.seed),
            cell.intensity, kill * 50, cell.windows_total, cell.windows_exact,
            cell.windows_flagged, cell.divergent_unflagged,
            static_cast<unsigned long long>(cell.injected_faults));
        cells.push_back(std::move(cell));
      }
    }
  }

  std::ofstream out(opt.out);
  out << "{\n  \"schema\": \"ow.chaos.report.v1\",\n  \"ok\": "
      << (ok ? "true" : "false") << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << "    {\"kind\": \"" << c.kind << "\", \"seed\": " << c.seed
        << ", \"intensity\": " << c.intensity
        << ", \"windows_total\": " << c.windows_total
        << ", \"windows_exact\": " << c.windows_exact
        << ", \"windows_flagged\": " << c.windows_flagged
        << ", \"divergent_unflagged\": " << c.divergent_unflagged
        << ", \"parallel_mismatch\": " << c.parallel_mismatch
        << ", \"injected_faults\": " << c.injected_faults << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.close();

  if (!ok) {
    std::fprintf(stderr,
                 "chaos_run: UNFLAGGED DIVERGENCE detected (see %s)\n",
                 opt.out.c_str());
    return 1;
  }
  std::printf("chaos_run: all windows exact or explicitly flagged (%zu "
              "cells) -> %s\n",
              cells.size(), opt.out.c_str());
  return 0;
}
