#!/usr/bin/env python3
"""Bench regression gate.

Compares a freshly produced bench JSON (BENCH_pipeline.json /
BENCH_merge.json schema family: top-level "results" list of row objects)
against the committed baseline in bench/results/. Only latency-style
metrics are gated: any row field whose name contains "ns_per" (lower is
better). Throughput fields ride along informationally.

Exit codes: 0 ok (warnings allowed), 1 regression beyond the fail
threshold or malformed/missing input. A row present in the baseline but
absent from the fresh run is a failure — silently dropping a workload
must not pass the gate.

Usage:
  tools/check_bench_regression.py --fresh BENCH_pipeline.json \
      --baseline bench/results/BENCH_pipeline.json \
      [--warn-pct 10] [--fail-pct 25]
"""

import argparse
import json
import sys


def row_key(row):
    """Identity of a result row: workload name and/or thread count."""
    key = []
    for field in ("workload", "threads"):
        if field in row:
            key.append((field, row[field]))
    return tuple(key)


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        sys.exit(f"error: {path} has no 'results' rows")
    indexed = {}
    for row in rows:
        key = row_key(row)
        if not key:
            sys.exit(f"error: {path}: row without workload/threads identity: "
                     f"{row}")
        if key in indexed:
            sys.exit(f"error: {path}: duplicate row identity {key}")
        indexed[key] = row
    return indexed


def fmt_key(key):
    return ",".join(f"{f}={v}" for f, v in key)


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--fresh", required=True, help="bench JSON from this run")
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--warn-pct", type=float, default=10.0)
    ap.add_argument("--fail-pct", type=float, default=25.0)
    args = ap.parse_args()

    fresh = load_rows(args.fresh)
    baseline = load_rows(args.baseline)

    failures = warnings = compared = 0
    for key, base_row in sorted(baseline.items()):
        fresh_row = fresh.get(key)
        if fresh_row is None:
            print(f"FAIL [{fmt_key(key)}] missing from fresh results")
            failures += 1
            continue
        for field, base_val in base_row.items():
            if "ns_per" not in field:
                continue
            fresh_val = fresh_row.get(field)
            if not isinstance(fresh_val, (int, float)):
                print(f"FAIL [{fmt_key(key)}] {field}: missing from fresh row")
                failures += 1
                continue
            if not isinstance(base_val, (int, float)) or base_val <= 0:
                continue
            delta_pct = 100.0 * (fresh_val - base_val) / base_val
            compared += 1
            line = (f"[{fmt_key(key)}] {field}: baseline {base_val:.1f} "
                    f"fresh {fresh_val:.1f} ({delta_pct:+.1f}%)")
            if delta_pct > args.fail_pct:
                print("FAIL " + line)
                failures += 1
            elif delta_pct > args.warn_pct:
                print("WARN " + line)
                warnings += 1
            else:
                print("  ok " + line)

    if compared == 0:
        sys.exit("error: no ns_per metrics compared — schema mismatch?")
    print(f"compared {compared} metrics: {failures} fail, {warnings} warn "
          f"(warn >{args.warn_pct:g}%, fail >{args.fail_pct:g}%)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
