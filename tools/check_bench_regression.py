#!/usr/bin/env python3
"""Bench regression gate.

Compares a freshly produced bench JSON (BENCH_pipeline.json /
BENCH_merge.json schema family: top-level "results" list of row objects)
against the committed baseline in bench/results/. Three metric families
are gated, all lower-is-better (shrinking is always good):

  * latency: any row field whose name contains "ns_per", gated
    relatively (--warn-pct / --fail-pct).
  * allocation counts: any row field whose name contains "allocs_per"
    (emitted by OW_ALLOC_TRACE builds), gated with a zero-aware absolute
    floor on top of the relative thresholds — a baseline of 0.0000
    allocs/record means the steady state is allocation-free, and ANY
    fresh allocation fails regardless of percentages. Rows missing
    allocs fields are skipped (normal builds don't emit them) unless
    --require-allocs is set, which the CI alloc-gate job uses so a
    silently untraced build cannot pass.
  * byte sizes: any row field whose name contains "bytes" — checkpoint
    and snapshot footprints, which are deterministic for a fixed trace.
    Gated relatively like latency; growth beyond --fail-pct fails, any
    shrink passes (and is the direction the encodings optimize for).
    NOT in the default --metrics set: only jobs whose byte metrics are
    deterministic (lifetime-smoke) opt in with --metrics=bytes.

Throughput fields ride along informationally.

Exit codes: 0 ok (warnings allowed), 1 regression beyond the fail
threshold or malformed/missing input. A row present in the baseline but
absent from the fresh run is a failure — silently dropping a workload
must not pass the gate.

Usage:
  tools/check_bench_regression.py --fresh BENCH_pipeline.json \
      --baseline bench/results/BENCH_pipeline.json \
      [--warn-pct 10] [--fail-pct 25] [--require-allocs]
"""

import argparse
import json
import sys


def row_key(row):
    """Identity of a result row: workload name and/or thread count."""
    key = []
    for field in ("workload", "threads"):
        if field in row:
            key.append((field, row[field]))
    return tuple(key)


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        sys.exit(f"error: {path} has no 'results' rows")
    indexed = {}
    for row in rows:
        key = row_key(row)
        if not key:
            sys.exit(f"error: {path}: row without workload/threads identity: "
                     f"{row}")
        if key in indexed:
            sys.exit(f"error: {path}: duplicate row identity {key}")
        indexed[key] = row
    return indexed


def fmt_key(key):
    return ",".join(f"{f}={v}" for f, v in key)


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--fresh", required=True, help="bench JSON from this run")
    ap.add_argument("--baseline", required=True, help="committed baseline JSON")
    ap.add_argument("--warn-pct", type=float, default=10.0)
    ap.add_argument("--fail-pct", type=float, default=25.0)
    ap.add_argument("--require-allocs", action="store_true",
                    help="fail when a baseline allocs_per field is missing "
                         "from the fresh row (alloc-gate CI job)")
    ap.add_argument("--metrics", default="latency,allocs",
                    help="comma list of metric families to gate: latency "
                         "(ns_per), allocs (allocs_per) and/or bytes "
                         "(checkpoint/snapshot sizes; shrink-is-good, "
                         "deterministic — opt-in). The alloc-gate job passes "
                         "--metrics=allocs so a traced build on a noisy "
                         "runner is not double-gated on wall time; the "
                         "lifetime-smoke job passes --metrics=bytes.")
    args = ap.parse_args()
    families = set(args.metrics.split(","))
    unknown = families - {"latency", "allocs", "bytes"}
    if unknown:
        sys.exit(f"error: unknown --metrics families: {sorted(unknown)}")

    fresh = load_rows(args.fresh)
    baseline = load_rows(args.baseline)

    failures = warnings = compared = 0
    for key, base_row in sorted(baseline.items()):
        fresh_row = fresh.get(key)
        if fresh_row is None:
            print(f"FAIL [{fmt_key(key)}] missing from fresh results")
            failures += 1
            continue
        for field, base_val in base_row.items():
            is_allocs = "allocs_per" in field
            is_latency = "ns_per" in field and not is_allocs
            is_bytes = "bytes" in field and not (is_allocs or is_latency)
            if is_latency and "latency" not in families:
                continue
            if is_allocs and "allocs" not in families:
                continue
            if is_bytes and "bytes" not in families:
                continue
            if not (is_latency or is_allocs or is_bytes):
                continue
            fresh_val = fresh_row.get(field)
            if not isinstance(fresh_val, (int, float)):
                if is_allocs and not args.require_allocs:
                    # Normal (untraced) builds legitimately omit alloc
                    # counts; only the alloc-gate job demands them.
                    print(f"skip [{fmt_key(key)}] {field}: not emitted "
                          f"(untraced build)")
                    continue
                print(f"FAIL [{fmt_key(key)}] {field}: missing from fresh row")
                failures += 1
                continue
            if not isinstance(base_val, (int, float)):
                continue
            if is_allocs:
                # Zero-aware absolute floor: a 0-alloc baseline tolerates
                # rounding noise only; nonzero baselines also get the
                # relative thresholds.
                fail_at = base_val + max(0.01, base_val * args.fail_pct / 100)
                warn_at = base_val + max(0.005, base_val * args.warn_pct / 100)
                compared += 1
                line = (f"[{fmt_key(key)}] {field}: baseline {base_val:.4f} "
                        f"fresh {fresh_val:.4f}")
                if fresh_val > fail_at:
                    print("FAIL " + line)
                    failures += 1
                elif fresh_val > warn_at:
                    print("WARN " + line)
                    warnings += 1
                else:
                    print("  ok " + line)
                continue
            if base_val <= 0:
                continue
            delta_pct = 100.0 * (fresh_val - base_val) / base_val
            compared += 1
            line = (f"[{fmt_key(key)}] {field}: baseline {base_val:.1f} "
                    f"fresh {fresh_val:.1f} ({delta_pct:+.1f}%)")
            if delta_pct > args.fail_pct:
                print("FAIL " + line)
                failures += 1
            elif delta_pct > args.warn_pct:
                print("WARN " + line)
                warnings += 1
            else:
                print("  ok " + line)

    if compared == 0:
        sys.exit("error: no ns_per/allocs_per/bytes metrics compared — "
                 "schema mismatch?")
    print(f"compared {compared} metrics: {failures} fail, {warnings} warn "
          f"(warn >{args.warn_pct:g}%, fail >{args.fail_pct:g}%)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
