#!/usr/bin/env python3
"""Validate an obs dump (<prefix>.stats.json + <prefix>.trace.json).

Checks the two schemas documented in docs/observability.md:
  * ow.obs.stats.v1  — flat counters/gauges/histogram summaries
  * ow.obs.trace.v1  — Chrome trace_event JSON ("X" complete events)

Usage:
  python3 tools/check_obs_json.py PREFIX [--require-spans p1,p2,...]

--require-spans asserts that at least one trace event name starts with each
given prefix (e.g. controller.,merge.,switch. for a full pipeline run).
Exits 0 when both files validate, 1 otherwise. Stdlib only.
"""

import argparse
import json
import sys

ERRORS = []


def fail(msg):
    ERRORS.append(msg)


def require(cond, msg):
    if not cond:
        fail(msg)
    return cond


def check_uint(obj, key, where):
    require(isinstance(obj.get(key), int) and obj[key] >= 0,
            f"{where}: '{key}' must be a non-negative integer")


def check_stats(doc):
    require(doc.get("schema") == "ow.obs.stats.v1",
            f"stats: schema is {doc.get('schema')!r}")
    require(isinstance(doc.get("enabled"), bool), "stats: 'enabled' not bool")
    for section in ("counters", "gauges", "histograms"):
        if not require(isinstance(doc.get(section), dict),
                       f"stats: '{section}' missing or not an object"):
            continue
        for name, value in doc[section].items():
            where = f"stats: {section}[{name!r}]"
            if section == "histograms":
                if not require(isinstance(value, dict), f"{where} not object"):
                    continue
                for field in ("count", "sum", "max", "p50", "p90", "p99"):
                    check_uint(value, field, where)
                if all(isinstance(value.get(f), int)
                       for f in ("p50", "p90", "p99", "max")):
                    require(value["p50"] <= value["p90"] <= value["p99"]
                            <= value["max"],
                            f"{where}: quantiles not monotone")
            else:
                require(isinstance(value, int), f"{where} not an integer")
    check_uint(doc, "spans_recorded", "stats")
    check_uint(doc, "spans_dropped", "stats")


def check_trace(doc, require_prefixes):
    other = doc.get("otherData")
    if require(isinstance(other, dict), "trace: 'otherData' missing"):
        require(other.get("schema") == "ow.obs.trace.v1",
                f"trace: schema is {other.get('schema')!r}")
    events = doc.get("traceEvents")
    if not require(isinstance(events, list),
                   "trace: 'traceEvents' missing or not a list"):
        return
    seen_names = set()
    for i, ev in enumerate(events):
        where = f"trace: event {i}"
        if not require(isinstance(ev, dict), f"{where} not an object"):
            continue
        require(isinstance(ev.get("name"), str) and ev["name"],
                f"{where}: bad 'name'")
        require(ev.get("ph") == "X", f"{where}: ph is {ev.get('ph')!r}")
        require(isinstance(ev.get("pid"), int), f"{where}: bad 'pid'")
        require(isinstance(ev.get("tid"), int), f"{where}: bad 'tid'")
        for field in ("ts", "dur"):
            require(isinstance(ev.get(field), (int, float))
                    and ev[field] >= 0, f"{where}: bad '{field}'")
        if isinstance(ev.get("name"), str):
            seen_names.add(ev["name"])
    for prefix in require_prefixes:
        require(any(n.startswith(prefix) for n in seen_names),
                f"trace: no span named '{prefix}*' "
                f"(saw {sorted(seen_names)[:10]})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("prefix", help="dump prefix (as given to --obs-out)")
    parser.add_argument("--require-spans", default="",
                        help="comma-separated span-name prefixes that must "
                             "appear in the trace")
    args = parser.parse_args()

    prefixes = [p for p in args.require_spans.split(",") if p]
    for suffix, checker in ((".stats.json", check_stats),
                            (".trace.json", None)):
        path = args.prefix + suffix
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"{path}: {e}")
            continue
        if checker:
            checker(doc)
        else:
            check_trace(doc, prefixes)

    if ERRORS:
        for err in ERRORS:
            print(f"FAIL {err}", file=sys.stderr)
        return 1
    print(f"OK {args.prefix}.stats.json + .trace.json")
    return 0


if __name__ == "__main__":
    sys.exit(main())
